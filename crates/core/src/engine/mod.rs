//! The step engine: *what a chain does at a vertex* separated from *how a
//! sweep executes*.
//!
//! The paper's samplers are synchronous distributed chains — every vertex
//! acts simultaneously each round — but an implementation must pick an
//! execution order. This module makes that choice a swappable backend:
//!
//! * a [`SyncRule`] describes one chain round as two per-vertex phases
//!   over CSR neighborhoods — **propose** (draw per-vertex randomness,
//!   publish a `Local` value) and **resolve** (combine the old state, the
//!   neighborhood's locals, and per-edge coins into the vertex's next
//!   spin);
//! * a [`Backend`] says how the sweep runs — four execution backends,
//!   all bit-identical by the determinism contract:
//!   [`Backend::Sequential`] (one vertex after another),
//!   [`Backend::Parallel`] (a scoped-thread fork-join over vertex
//!   ranges), [`Backend::Sharded`] (owner-computes graph shards with
//!   boundary exchange and communication accounting — see
//!   [`sharded::ShardedChain`]), and the batched-replica backend
//!   ([`replicas::ReplicaSet`], which advances a whole batch of chains
//!   in one cache-friendly pass — the workhorse for TV estimation and
//!   grand couplings);
//! * [`SyncChain`] owns the buffers and advances one chain.
//!
//! # The determinism contract
//!
//! Every random draw of round `r` is a pure function of
//! `(master_seed, r, vertex-or-edge id)`, via the counter-style streams
//! of [`lsl_local::rng::round_key`]: vertex streams for the two phases,
//! one shared coin stream per edge, and one round-shared stream (used
//! e.g. for single-site vertex selection). No generator is ever shared
//! between two vertices, two edges, or two rounds, so **execution order
//! cannot affect the trajectory**: sequential and parallel sweeps are
//! bit-identical, and replicas coupled on the same master seed realize
//! the paper's grand coupling by construction.

pub mod hotpath;
pub mod replicas;
pub mod rules;
pub mod sharded;
pub mod slab;

pub use hotpath::{HotKernel, HotPath};
pub use slab::{Packing, StateSlab, StateView};

use lsl_graph::{EdgeId, VertexId};
use lsl_local::rng::{derive_seed, round_key, VertexRng, Xoshiro256pp};
use lsl_mrf::{Mrf, Spin};
use std::sync::Arc;

/// Phase labels under which round-local streams are derived.
const PROPOSE_LABEL: u64 = 0x5052_4f50_4f53_4500; // "PROPOSE\0"
const RESOLVE_LABEL: u64 = 0x5245_534f_4c56_4500; // "RESOLVE\0"
const EDGE_LABEL: u64 = 0x4544_4745_434f_494e; // "EDGECOIN"
const SHARED_LABEL: u64 = 0x5348_4152_4544_5244; // "SHAREDRD"

/// The randomness context of one synchronous round.
///
/// Derived once per round from `(master, round)`; hands out the
/// counter-style streams of the determinism contract.
pub struct RoundCtx<'a> {
    mrf: &'a Mrf,
    round: u64,
    propose_master: u64,
    resolve_master: u64,
    edge_master: u64,
    shared_seed: u64,
}

impl<'a> RoundCtx<'a> {
    /// The context of round `round` of the chain seeded by `master`.
    pub fn new(mrf: &'a Mrf, master: u64, round: u64) -> Self {
        let key = round_key(master, round);
        RoundCtx {
            mrf,
            round,
            propose_master: derive_seed(key, PROPOSE_LABEL, 0),
            resolve_master: derive_seed(key, RESOLVE_LABEL, 0),
            edge_master: derive_seed(key, EDGE_LABEL, 0),
            shared_seed: derive_seed(key, SHARED_LABEL, 0),
        }
    }

    /// The model being sampled.
    #[inline]
    pub fn mrf(&self) -> &'a Mrf {
        self.mrf
    }

    /// The round index (drives deterministic schedules, e.g. chromatic
    /// classes).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Vertex `v`'s private stream for the propose phase.
    #[inline]
    pub fn propose_rng(&self, v: VertexId) -> VertexRng {
        VertexRng::for_vertex(self.propose_master, v.0)
    }

    /// Vertex `v`'s private stream for the resolve phase (independent of
    /// the propose stream).
    #[inline]
    pub fn resolve_rng(&self, v: VertexId) -> VertexRng {
        VertexRng::for_vertex(self.resolve_master, v.0)
    }

    /// The shared coin of edge `e`: uniform in `[0, 1)`, identical for
    /// both endpoints (each evaluates it independently).
    #[inline]
    pub fn edge_coin(&self, e: EdgeId) -> f64 {
        Xoshiro256pp::seed_from(derive_seed(self.edge_master, EDGE_LABEL, e.0 as u64)).uniform_f64()
    }

    /// The round-shared stream: every vertex that evaluates it sees the
    /// same draws (e.g. the single-site chains' vertex selection).
    #[inline]
    pub fn shared_rng(&self) -> Xoshiro256pp {
        Xoshiro256pp::seed_from(self.shared_seed)
    }

    /// The round's shared uniformly-picked vertex (one truncation-mapped
    /// draw from the shared stream) — the single selection used by both
    /// the single-site rules and the singleton scheduler, kept in one
    /// place so their trajectories correspond under one master seed.
    #[inline]
    pub fn shared_vertex(&self) -> VertexId {
        let n = self.mrf.num_vertices();
        let i = (self.shared_rng().uniform_f64() * n as f64) as usize;
        VertexId(i.min(n.saturating_sub(1)) as u32)
    }
}

/// What a chain does at one vertex in one synchronous round.
///
/// Implementations must be pure per-vertex functions of the inputs they
/// are handed — the engine exploits this to run phases in any order (or
/// in parallel) without changing the trajectory. Rules are `Send + Sync`
/// so chains that own them are `Send` handles servable from worker
/// threads (see `lsl_core::service`).
pub trait SyncRule: Send + Sync {
    /// The per-vertex value published by the propose phase (a proposal
    /// spin, a Luby `β_v`, ...).
    type Local: Copy + Send + Sync + Default;

    /// Reusable per-worker scratch (marginal buffers, resamplers, ...).
    type Scratch: Send;

    /// Whether the propose phase runs at all (single-site rules skip it).
    const HAS_PROPOSE: bool = true;

    /// Whether `propose` reads only its stream — never the state. State-
    /// free proposals are identical across replicas coupled on one master
    /// seed, so the batched backend computes them once per round.
    const STATE_FREE_PROPOSE: bool = false;

    /// Chain name for experiment output.
    fn name(&self) -> &'static str;

    /// Builds one worker's scratch.
    fn make_scratch(&self, mrf: &Mrf) -> Self::Scratch;

    /// For single-site chains: the unique vertex that can change this
    /// round (a pure function of the round's shared stream). Engines
    /// then touch only that vertex. `None` for synchronous chains.
    fn active_vertex(&self, ctx: &RoundCtx) -> Option<VertexId> {
        let _ = ctx;
        None
    }

    /// Propose phase at `v`: draw from `rng` (and, unless
    /// [`SyncRule::STATE_FREE_PROPOSE`], read the state) and publish a
    /// local value. Generic over the state representation (see
    /// [`StateView`]): the scalar oracle hands a flat slice, packed
    /// executors hand a [`StateSlab`] — one rule body, identical
    /// trajectories.
    fn propose<Sv: StateView + ?Sized>(
        &self,
        ctx: &RoundCtx,
        v: VertexId,
        state: &Sv,
        rng: &mut Xoshiro256pp,
        scratch: &mut Self::Scratch,
    ) -> Self::Local;

    /// Resolve phase at `v`: combine the old state, the locals of `v`'s
    /// inclusive neighborhood, the edge coins of incident edges, and the
    /// resolve stream into `v`'s next spin.
    fn resolve<Sv: StateView + ?Sized>(
        &self,
        ctx: &RoundCtx,
        v: VertexId,
        state: &Sv,
        locals: &[Self::Local],
        rng: &mut Xoshiro256pp,
        scratch: &mut Self::Scratch,
    ) -> Spin;

    /// Builds this rule's lane-batched hot kernel for `mrf`, if it has
    /// one (see [`hotpath`]). `None` — the default — means the engine
    /// always runs the scalar per-vertex phases; rules that return a
    /// kernel must make it bit-identical to those phases, which stay
    /// compiled and selectable ([`HotPath::Scalar`]) as the regression
    /// oracle.
    fn hot_kernel(
        &self,
        mrf: &Arc<Mrf>,
        packing: Packing,
        block_rng: bool,
    ) -> Option<Box<dyn HotKernel<Self::Local>>> {
        let _ = (mrf, packing, block_rng);
        None
    }
}

/// How a sweep executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// One vertex after another on the calling thread.
    Sequential,
    /// Fork-join over contiguous vertex ranges with scoped threads.
    /// Bit-identical to [`Backend::Sequential`] by the determinism
    /// contract.
    ///
    /// **`threads == 0` means auto-detect**: the worker count resolves
    /// to [`std::thread::available_parallelism`] (clamped to at least
    /// one worker if the probe fails) at the moment the backend is
    /// installed — see [`Backend::worker_count`].
    Parallel {
        /// Worker count (0 = auto-detect; see the variant docs).
        threads: usize,
    },
    /// Owner-computes graph shards with per-round boundary exchange;
    /// bit-identical to the other backends by the determinism contract.
    ///
    /// **`shards == 0` means auto-detect**: the shard count resolves to
    /// [`std::thread::available_parallelism`] (clamped to at least one
    /// shard if the probe fails), and executors additionally clamp it
    /// to the vertex count so a small model never gets empty shards.
    ///
    /// The sampler facade builds a [`sharded::ShardedChain`] (private
    /// state slabs, frontier buffers, communication accounting) for
    /// this backend, partitioning with
    /// [`Partition::contiguous`](lsl_graph::partition::Partition::contiguous);
    /// construct a `ShardedChain` directly to choose the partitioner.
    /// [`SyncChain`] and [`replicas::ReplicaSet`], whose state is one
    /// flat arena by design, treat it as [`Backend::Parallel`] with
    /// `shards` workers.
    Sharded {
        /// Shard count (0 = auto-detect; see the variant docs).
        shards: usize,
    },
    /// Cross-process sharding: the owner-computes plan of
    /// [`Backend::Sharded`], but with each shard owned by a separate
    /// worker *process* exchanging boundary states as `shard-sync`
    /// frames over TCP (see `lsl_core::cluster`). Run in-process (a
    /// plain `JobSpec::run`, or the facade), it falls back to the
    /// sharded executor with the same partition — bit-identical to
    /// the distributed run by the determinism contract, which is
    /// exactly what `tests/cluster_identity.rs` asserts.
    ///
    /// **`shards == 0` means auto-detect**, like [`Backend::Sharded`].
    Cluster {
        /// Shard count = worker-process count (0 = auto-detect).
        shards: usize,
    },
}

impl Backend {
    /// The number of workers this backend will use. The `0 = auto`
    /// variants resolve to [`std::thread::available_parallelism`],
    /// never less than one worker.
    pub fn worker_count(self) -> usize {
        match self {
            Backend::Sequential => 1,
            Backend::Parallel { threads: 0 }
            | Backend::Sharded { shards: 0 }
            | Backend::Cluster { shards: 0 } => {
                // NonZeroUsize: the probe cannot yield 0, and a failed
                // probe falls back to one worker.
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }
            Backend::Parallel { threads } => threads,
            Backend::Sharded { shards } | Backend::Cluster { shards } => shards,
        }
    }
}

/// Canonical spec-string form, accepted back by the `FromStr` impl:
/// `sequential`, `parallel:<threads>`, `sharded:<shards>` (0 = auto).
impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Sequential => write!(f, "sequential"),
            Backend::Parallel { threads } => write!(f, "parallel:{threads}"),
            Backend::Sharded { shards } => write!(f, "sharded:{shards}"),
            Backend::Cluster { shards } => write!(f, "cluster:{shards}"),
        }
    }
}

/// Parses the [`Display`](Backend#impl-Display-for-Backend) form;
/// `parallel` and `sharded` without a count mean auto (0).
impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (name, arg) = match s.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (s, None),
        };
        let count = |arg: Option<&str>| -> Result<usize, String> {
            match arg {
                None => Ok(0),
                Some(a) => a
                    .parse::<usize>()
                    .map_err(|_| format!("backend count {a:?} is not a non-negative integer")),
            }
        };
        match name {
            "sequential" => match arg {
                None => Ok(Backend::Sequential),
                Some(a) => Err(format!("sequential takes no argument, got {a:?}")),
            },
            "parallel" => Ok(Backend::Parallel {
                threads: count(arg)?,
            }),
            "sharded" => Ok(Backend::Sharded {
                shards: count(arg)?,
            }),
            "cluster" => Ok(Backend::Cluster {
                shards: count(arg)?,
            }),
            other => Err(format!(
                "unknown backend {other:?} (expected sequential | parallel[:t] | sharded[:k] \
                 | cluster[:k])"
            )),
        }
    }
}

/// Fills `out[i] = f(offset + i, scratch)` using `workers` threads over
/// contiguous chunks. `f` must be a pure function of the index (plus
/// its captured shared references) — the chunking is then unobservable.
fn fill_indexed<T: Send, S: Send>(
    workers: usize,
    out: &mut [T],
    scratches: &mut [S],
    f: impl Fn(usize, &mut T, &mut S) + Sync,
) {
    if workers <= 1 || out.len() < 2 * workers {
        let s = &mut scratches[0];
        for (i, slot) in out.iter_mut().enumerate() {
            f(i, slot, s);
        }
        return;
    }
    let chunk = out.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (ci, (chunk_out, scratch)) in
            out.chunks_mut(chunk).zip(scratches.iter_mut()).enumerate()
        {
            let f = &f;
            scope.spawn(move || {
                let base = ci * chunk;
                for (i, slot) in chunk_out.iter_mut().enumerate() {
                    f(base + i, slot, scratch);
                }
            });
        }
    });
}

/// Runs the propose phase of `ctx` into `locals`.
fn propose_phase<R: SyncRule>(
    rule: &R,
    ctx: &RoundCtx,
    state: &[Spin],
    locals: &mut [R::Local],
    scratches: &mut [R::Scratch],
    workers: usize,
) {
    fill_indexed(workers, locals, scratches, |i, slot, scratch| {
        let v = VertexId(i as u32);
        let mut rng = ctx.propose_rng(v);
        *slot = rule.propose(ctx, v, state, rng.raw(), scratch);
    });
}

/// Runs the resolve phase of `ctx` into `next`.
fn resolve_phase<R: SyncRule>(
    rule: &R,
    ctx: &RoundCtx,
    state: &[Spin],
    locals: &[R::Local],
    next: &mut [Spin],
    scratches: &mut [R::Scratch],
    workers: usize,
) {
    fill_indexed(workers, next, scratches, |i, slot, scratch| {
        let v = VertexId(i as u32);
        let mut rng = ctx.resolve_rng(v);
        *slot = rule.resolve(ctx, v, state, locals, rng.raw(), scratch);
    });
}

/// One full round of `rule` on `state` under `ctx`, with the single-site
/// fast path (only the active vertex is touched). `state` and `next` are
/// swapped on synchronous rounds.
#[allow(clippy::too_many_arguments)]
fn run_round<R: SyncRule>(
    rule: &R,
    ctx: &RoundCtx,
    state: &mut Vec<Spin>,
    next: &mut Vec<Spin>,
    locals: &mut [R::Local],
    scratches: &mut [R::Scratch],
    workers: usize,
) {
    if let Some(v) = rule.active_vertex(ctx) {
        let mut rng = ctx.resolve_rng(v);
        let spin = rule.resolve(ctx, v, state, locals, rng.raw(), &mut scratches[0]);
        state[v.index()] = spin;
        return;
    }
    if R::HAS_PROPOSE {
        propose_phase(rule, ctx, state, locals, scratches, workers);
    }
    resolve_phase(rule, ctx, state, locals, next, scratches, workers);
    std::mem::swap(state, next);
}

/// One chain advanced by the step engine.
///
/// The chain *owns* its model as an `Arc<Mrf>`, so it is a `'static`,
/// `Send` handle: build it, hand it to a worker thread, serve it for as
/// long as the process lives. Constructors take `impl Into<Arc<Mrf>>` —
/// pass an `Arc<Mrf>` (cheap, shared), an owned `Mrf`, or `&Mrf` (which
/// clones into a fresh handle; fine for tests, avoid in loops).
///
/// # Example
/// ```
/// use lsl_core::engine::rules::LocalMetropolisRule;
/// use lsl_core::engine::{Backend, SyncChain};
/// use lsl_graph::generators;
/// use lsl_mrf::models;
/// use std::sync::Arc;
///
/// let mrf = Arc::new(models::proper_coloring(generators::torus(6, 6), 12));
/// let mut chain = SyncChain::new(Arc::clone(&mrf), LocalMetropolisRule::new(), 7);
/// chain.set_backend(Backend::Parallel { threads: 0 });
/// chain.run(40);
/// assert!(mrf.is_feasible(chain.state()));
/// ```
pub struct SyncChain<R: SyncRule> {
    mrf: Arc<Mrf>,
    rule: R,
    backend: Backend,
    state: Vec<Spin>,
    next: Vec<Spin>,
    locals: Vec<R::Local>,
    scratches: Vec<R::Scratch>,
    /// Resolved worker count (cached at `set_backend`; probing
    /// available parallelism per round is not free).
    workers: usize,
    /// The hot-path selection (see [`HotPath`]).
    hotpath: HotPath,
    /// The rule's lane-batched kernel under `hotpath`, if any. Engaged
    /// on single-worker synchronous rounds; the scalar phases remain
    /// the multi-worker path and the oracle.
    kernel: Option<Box<dyn HotKernel<R::Local>>>,
    master: u64,
    round: u64,
    last_key: Option<(u64, u64)>,
}

impl<R: SyncRule> std::fmt::Debug for SyncChain<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncChain")
            .field("rule", &self.rule.name())
            .field("backend", &self.backend)
            .field("n", &self.state.len())
            .field("round", &self.round)
            .finish()
    }
}

impl<R: SyncRule> SyncChain<R> {
    /// Builds the chain on the deterministic default start with the
    /// sequential backend.
    pub fn new(mrf: impl Into<Arc<Mrf>>, rule: R, master: u64) -> Self {
        let mrf = mrf.into();
        let start = crate::single_site::default_start(&mrf);
        Self::with_state(mrf, rule, master, start)
    }

    /// Builds the chain from an explicit start.
    ///
    /// # Panics
    /// Panics if the configuration has the wrong length.
    pub fn with_state(mrf: impl Into<Arc<Mrf>>, rule: R, master: u64, state: Vec<Spin>) -> Self {
        let mrf = mrf.into();
        assert_eq!(state.len(), mrf.num_vertices(), "state length must be n");
        let n = state.len();
        let scratches = vec![rule.make_scratch(&mrf)];
        let hotpath = HotPath::default();
        let kernel = hotpath.build_kernel(&mrf, &rule);
        SyncChain {
            mrf,
            rule,
            backend: Backend::Sequential,
            state,
            next: vec![0; n],
            locals: vec![R::Local::default(); n],
            scratches,
            workers: 1,
            hotpath,
            kernel,
            master,
            round: 0,
            last_key: None,
        }
    }

    /// Switches the execution backend (trajectories are unaffected).
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
        let want = backend.worker_count();
        while self.scratches.len() < want {
            self.scratches.push(self.rule.make_scratch(&self.mrf));
        }
        self.workers = want;
    }

    /// Switches the hot-path selection (trajectories are unaffected —
    /// kernels are bit-identical to the scalar phases by contract, and
    /// property-tested to be).
    ///
    /// # Panics
    /// Panics if an explicitly requested packing cannot hold this
    /// model's spins (e.g. [`Packing::Bit`] with `q > 2`).
    pub fn set_hotpath(&mut self, hotpath: HotPath) {
        hotpath
            .validate_for(self.mrf.q())
            .expect("invalid hot path");
        self.hotpath = hotpath;
        self.kernel = hotpath.build_kernel(&self.mrf, &self.rule);
    }

    /// The hot-path selection in use.
    pub fn hotpath(&self) -> HotPath {
        self.hotpath
    }

    /// Whether rounds are currently served by a lane-batched kernel
    /// (rule has one, hot path enabled, single-worker backend).
    pub fn kernel_engaged(&self) -> bool {
        self.kernel.is_some() && self.workers <= 1
    }

    /// The execution backend in use.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The model being sampled.
    pub fn mrf(&self) -> &Mrf {
        &self.mrf
    }

    /// The owning handle of the model (cheap to clone and share).
    pub fn mrf_handle(&self) -> &Arc<Mrf> {
        &self.mrf
    }

    /// The vertex-step rule.
    pub fn rule(&self) -> &R {
        &self.rule
    }

    /// The current configuration.
    pub fn state(&self) -> &[Spin] {
        &self.state
    }

    /// Overwrites the current configuration.
    ///
    /// # Panics
    /// Panics if the length is wrong.
    pub fn set_state(&mut self, state: &[Spin]) {
        assert_eq!(state.len(), self.state.len());
        self.state.copy_from_slice(state);
    }

    /// The number of rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The locals published by the most recent synchronous round (for
    /// instrumentation, e.g. recovering the scheduled set).
    pub fn locals(&self) -> &[R::Local] {
        &self.locals
    }

    /// The `(master, round)` pair of the most recent round, if any.
    pub fn last_round_key(&self) -> Option<(u64, u64)> {
        self.last_key
    }

    /// Advances one round using this chain's own master seed.
    pub fn step(&mut self) {
        self.step_keyed(self.master);
    }

    /// Advances one round whose randomness is keyed by an externally
    /// supplied master seed (used by the [`crate::Chain`] adapters, which
    /// derive per-step masters from the caller's generator so that grand
    /// couplings keep working through the legacy interface).
    pub fn step_keyed(&mut self, master: u64) {
        let ctx = RoundCtx::new(&self.mrf, master, self.round);
        let workers = self.workers.min(self.scratches.len());
        // Lane-batched fast path: single-worker synchronous rounds of a
        // rule with a kernel. Multi-worker sweeps keep the scalar
        // phases (the kernel is one strided pass; splitting it would
        // re-introduce the per-vertex plumbing it removes), as do
        // single-site rounds.
        match self.kernel.as_mut() {
            Some(kernel) if workers <= 1 && self.rule.active_vertex(&ctx).is_none() => {
                kernel.round(&ctx, &self.state, &mut self.next, &mut self.locals);
                std::mem::swap(&mut self.state, &mut self.next);
            }
            _ => run_round(
                &self.rule,
                &ctx,
                &mut self.state,
                &mut self.next,
                &mut self.locals,
                &mut self.scratches,
                workers,
            ),
        }
        self.last_key = Some((master, self.round));
        self.round += 1;
    }

    /// Advances `t` rounds.
    pub fn run(&mut self, t: usize) {
        for _ in 0..t {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rules::{GlauberRule, LocalMetropolisRule, LubyGlauberRule};
    use super::*;
    use lsl_graph::generators;
    use lsl_mrf::models;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trajectories_match<R: SyncRule + Clone>(mrf: &Mrf, rule: R, rounds: usize) {
        let mut seq = SyncChain::new(mrf, rule.clone(), 99);
        let mut par = SyncChain::new(mrf, rule, 99);
        par.set_backend(Backend::Parallel { threads: 3 });
        for r in 0..rounds {
            seq.step();
            par.step();
            assert_eq!(seq.state(), par.state(), "diverged at round {r}");
        }
    }

    #[test]
    fn local_metropolis_parallel_matches_sequential() {
        let mrf = models::proper_coloring(generators::torus(5, 5), 10);
        trajectories_match(&mrf, LocalMetropolisRule::new(), 30);
    }

    #[test]
    fn local_metropolis_soft_model_parallel_matches_sequential() {
        // Ising exercises the fractional-coin path (coins actually drawn).
        let mrf = models::ising(generators::torus(4, 4), 0.4);
        trajectories_match(&mrf, LocalMetropolisRule::new(), 30);
    }

    #[test]
    fn luby_glauber_parallel_matches_sequential() {
        let mrf = models::proper_coloring(generators::cycle(17), 5);
        trajectories_match(&mrf, LubyGlauberRule::luby(), 30);
    }

    #[test]
    fn single_site_runs_through_engine() {
        let mrf = models::proper_coloring(generators::cycle(8), 5);
        let mut chain = SyncChain::new(&mrf, GlauberRule, 3);
        chain.run(200);
        assert!(mrf.is_feasible(chain.state()));
        // Single-site fast path touches one vertex per round.
        let before = chain.state().to_vec();
        chain.step();
        let diff = before
            .iter()
            .zip(chain.state())
            .filter(|(a, b)| a != b)
            .count();
        assert!(diff <= 1);
    }

    #[test]
    fn step_keyed_is_deterministic_in_the_key() {
        let mrf = models::proper_coloring(generators::torus(4, 4), 9);
        let mut a = SyncChain::new(&mrf, LocalMetropolisRule::new(), 0);
        let mut b = SyncChain::new(&mrf, LocalMetropolisRule::new(), 0);
        let mut keys = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let k = rand::RngExt::random::<u64>(&mut keys);
            a.step_keyed(k);
            b.step_keyed(k);
            assert_eq!(a.state(), b.state());
        }
    }

    #[test]
    fn worker_count_resolves() {
        assert_eq!(Backend::Sequential.worker_count(), 1);
        assert_eq!(Backend::Parallel { threads: 4 }.worker_count(), 4);
        assert!(Backend::Parallel { threads: 0 }.worker_count() >= 1);
        // The 0-means-auto contract: sharded auto-detection clamps to
        // available parallelism and never resolves below one shard.
        let auto = Backend::Sharded { shards: 0 }.worker_count();
        assert!(auto >= 1);
        assert_eq!(
            auto,
            std::thread::available_parallelism().map_or(1, |n| n.get())
        );
    }

    #[test]
    fn backend_display_parses_back() {
        for b in [
            Backend::Sequential,
            Backend::Parallel { threads: 0 },
            Backend::Parallel { threads: 6 },
            Backend::Sharded { shards: 0 },
            Backend::Sharded { shards: 8 },
            Backend::Cluster { shards: 0 },
            Backend::Cluster { shards: 3 },
        ] {
            assert_eq!(b.to_string().parse::<Backend>().unwrap(), b);
        }
        assert_eq!(
            "parallel".parse::<Backend>().unwrap(),
            Backend::Parallel { threads: 0 }
        );
        assert_eq!(
            "sharded".parse::<Backend>().unwrap(),
            Backend::Sharded { shards: 0 }
        );
        assert_eq!(
            "cluster".parse::<Backend>().unwrap(),
            Backend::Cluster { shards: 0 }
        );
        assert!("sequential:2".parse::<Backend>().is_err());
        assert!("gpu".parse::<Backend>().is_err());
        assert!("parallel:x".parse::<Backend>().is_err());
    }
}
