//! The batched-replica backend: advance `B` chains in one pass.
//!
//! Every empirical claim in the paper needs many independent replicas
//! (TV estimation) or many coupled copies (coalescence measurement).
//! Running them as separate chains costs a per-replica setup (buffers,
//! generators) per chain and, for grand couplings, re-derives identical
//! randomness once per copy. [`ReplicaSet`] stores all configurations in
//! one replica-major arena and advances every replica per round with
//! shared buffers:
//!
//! * **independent mode** — replica `b` runs under its own master seed
//!   `derive_seed(seed, REPLICA, b)`: iid chains for TV estimation;
//! * **coupled mode** — every replica shares one master seed: the grand
//!   coupling of the coupling lemma, by the determinism contract. For
//!   rules with state-free proposals (both synchronous chains), the
//!   propose phase is computed **once per round** and shared across all
//!   `B` copies — the batch does `1/B` of the proposal randomness work.
//!
//! Replicas are embarrassingly parallel, so the set also accepts a
//! [`Backend`] that shards replicas over scoped threads.

use super::{HotKernel, HotPath, RoundCtx, SyncRule};
use crate::engine::Backend;
use lsl_local::rng::derive_seed;
use lsl_mrf::{Mrf, Spin};
use std::sync::Arc;

/// Label under which per-replica master seeds are derived.
const REPLICA_LABEL: u64 = 0x5245_504c_4943_4100; // "REPLICA\0"

/// A batch of `B` chains of one rule advanced together.
///
/// The set *owns* its model as an `Arc<Mrf>` (constructors take
/// `impl Into<Arc<Mrf>>`), so it is a `'static`, `Send` handle.
///
/// # Example
/// ```
/// use lsl_core::engine::replicas::ReplicaSet;
/// use lsl_core::engine::rules::LocalMetropolisRule;
/// use lsl_graph::generators;
/// use lsl_mrf::models;
/// use std::sync::Arc;
///
/// let mrf = Arc::new(models::proper_coloring(generators::torus(4, 4), 8));
/// let mut set = ReplicaSet::independent(Arc::clone(&mrf), LocalMetropolisRule::new(), 16, 7);
/// set.run(50);
/// for state in set.states() {
///     assert!(mrf.is_feasible(state));
/// }
/// ```
pub struct ReplicaSet<R: SyncRule> {
    mrf: Arc<Mrf>,
    rule: R,
    backend: Backend,
    n: usize,
    count: usize,
    /// Replica-major arena: replica `b` lives in `b*n..(b+1)*n`.
    states: Vec<Spin>,
    next: Vec<Spin>,
    masters: Vec<u64>,
    coupled: bool,
    /// Shared locals for coupled state-free proposals.
    shared_locals: Vec<R::Local>,
    /// Per-worker (locals, scratch) pairs.
    worker_locals: Vec<Vec<R::Local>>,
    scratches: Vec<R::Scratch>,
    /// The hot-path selection, and one kernel per worker (replicas are
    /// sharded by whole replica, so per-worker kernels preserve
    /// trajectories at any worker count). A kernel's proposal cache is
    /// keyed by the round's propose master, which is what amortizes the
    /// coupled batch's shared randomness without a separate shared
    /// propose pass.
    hotpath: HotPath,
    kernels: Vec<Option<Box<dyn HotKernel<R::Local>>>>,
    /// Resolved worker count (cached at `set_backend`; probing
    /// available parallelism per round is not free).
    workers: usize,
    round: u64,
}

impl<R: SyncRule> std::fmt::Debug for ReplicaSet<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaSet")
            .field("rule", &self.rule.name())
            .field("backend", &self.backend)
            .field("replicas", &self.count)
            .field("coupled", &self.coupled)
            .field("round", &self.round)
            .finish()
    }
}

impl<R: SyncRule> ReplicaSet<R> {
    fn build(mrf: Arc<Mrf>, rule: R, states: Vec<Spin>, masters: Vec<u64>, coupled: bool) -> Self {
        let n = mrf.num_vertices();
        assert!(n > 0, "replica sets need a non-empty model");
        let count = masters.len();
        assert_eq!(states.len(), n * count);
        let scratches = vec![rule.make_scratch(&mrf)];
        let hotpath = HotPath::default();
        let kernels = vec![hotpath.build_kernel(&mrf, &rule)];
        ReplicaSet {
            rule,
            backend: Backend::Sequential,
            n,
            count,
            next: vec![0; states.len()],
            states,
            masters,
            coupled,
            shared_locals: vec![R::Local::default(); n],
            worker_locals: vec![vec![R::Local::default(); n]],
            scratches,
            hotpath,
            kernels,
            workers: 1,
            round: 0,
            mrf,
        }
    }

    /// `count` iid replicas from the deterministic default start, each
    /// under its own master seed derived from `seed`.
    pub fn independent(mrf: impl Into<Arc<Mrf>>, rule: R, count: usize, seed: u64) -> Self {
        assert!(count > 0, "need at least one replica");
        let mrf = mrf.into();
        let start = crate::single_site::default_start(&mrf);
        let starts: Vec<&[Spin]> = (0..count).map(|_| &start[..]).collect();
        Self::independent_from(mrf, rule, &starts, seed)
    }

    /// `starts.len()` iid replicas from explicit starts.
    ///
    /// # Panics
    /// Panics if `starts` is empty or any start has the wrong length.
    pub fn independent_from(
        mrf: impl Into<Arc<Mrf>>,
        rule: R,
        starts: &[&[Spin]],
        seed: u64,
    ) -> Self {
        assert!(!starts.is_empty(), "need at least one replica");
        let mrf = mrf.into();
        let n = mrf.num_vertices();
        let mut states = Vec::with_capacity(n * starts.len());
        for s in starts {
            assert_eq!(s.len(), n, "start length must be n");
            states.extend_from_slice(s);
        }
        let masters = (0..starts.len() as u64)
            .map(|b| derive_seed(seed, REPLICA_LABEL, b))
            .collect();
        Self::build(mrf, rule, states, masters, false)
    }

    /// A grand coupling: one copy per start, all sharing the single
    /// master seed `master` (identical randomness every round).
    ///
    /// # Panics
    /// Panics if `starts` is empty or any start has the wrong length.
    pub fn coupled(mrf: impl Into<Arc<Mrf>>, rule: R, starts: &[Vec<Spin>], master: u64) -> Self {
        assert!(!starts.is_empty(), "need at least one copy");
        let mrf = mrf.into();
        let n = mrf.num_vertices();
        let mut states = Vec::with_capacity(n * starts.len());
        for s in starts {
            assert_eq!(s.len(), n, "start length must be n");
            states.extend_from_slice(s);
        }
        let masters = vec![master; starts.len()];
        Self::build(mrf, rule, states, masters, true)
    }

    /// Shards replicas over `backend`'s workers (trajectories are
    /// unaffected).
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
        let want = backend.worker_count();
        while self.scratches.len() < want {
            self.scratches.push(self.rule.make_scratch(&self.mrf));
            self.worker_locals.push(vec![R::Local::default(); self.n]);
            self.kernels
                .push(self.hotpath.build_kernel(&self.mrf, &self.rule));
        }
        self.workers = want;
    }

    /// Selects the hot path for the synchronous rounds (trajectories are
    /// unaffected — kernels are bit-identical to the scalar phases).
    ///
    /// # Panics
    /// Panics if an explicitly requested packing cannot hold the model's
    /// spins.
    pub fn set_hotpath(&mut self, hotpath: HotPath) {
        hotpath
            .validate_for(self.mrf.q())
            .expect("invalid hot path for this model");
        self.hotpath = hotpath;
        for slot in self.kernels.iter_mut() {
            *slot = hotpath.build_kernel(&self.mrf, &self.rule);
        }
    }

    /// The hot-path selection in effect.
    pub fn hotpath(&self) -> HotPath {
        self.hotpath
    }

    /// Number of replicas `B`.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The number of rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Replica `b`'s configuration.
    pub fn state(&self, b: usize) -> &[Spin] {
        &self.states[b * self.n..(b + 1) * self.n]
    }

    /// All configurations, in replica order.
    pub fn states(&self) -> impl ExactSizeIterator<Item = &[Spin]> {
        self.states.chunks(self.n)
    }

    /// Whether all replicas coincide (the grand coupling has coalesced).
    pub fn coalesced(&self) -> bool {
        let first = self.state(0);
        (1..self.count).all(|b| self.state(b) == first)
    }

    /// Advances every replica by one round.
    pub fn step_all(&mut self) {
        let round = self.round;
        // Single-site rules update one vertex in place; synchronous rules
        // double-buffer. The branch is rule-constant (checked below).
        let probe = RoundCtx::new(&self.mrf, self.masters[0], round);
        let single_site = self.rule.active_vertex(&probe).is_some();

        // Coupled + state-free proposals: one propose phase serves every
        // replica (they share all randomness, and proposals ignore the
        // state) — the batch's 1/B randomness amortization. Engaged
        // kernels get the same amortization from their propose cache
        // (keyed by the shared propose master), so the precompute is
        // skipped for them.
        let kernels_engaged = !single_site && self.kernels[0].is_some();
        let share_propose = !single_site
            && self.coupled
            && R::HAS_PROPOSE
            && R::STATE_FREE_PROPOSE
            && !kernels_engaged;
        if share_propose {
            let ctx = RoundCtx::new(&self.mrf, self.masters[0], round);
            super::propose_phase(
                &self.rule,
                &ctx,
                &self.states[..self.n],
                &mut self.shared_locals,
                &mut self.scratches[..1],
                1,
            );
        }

        // Below this much per-round work (spins actually touched: one per
        // replica for single-site rules, the whole arena otherwise),
        // fork-join overhead rivals the work itself — run on the calling
        // thread.
        const MIN_PARALLEL_SPINS: usize = 1 << 14;
        let touched = if single_site {
            self.count
        } else {
            self.count * self.n
        };
        let workers = if touched < MIN_PARALLEL_SPINS {
            1
        } else {
            self.workers.min(self.count).max(1)
        };
        let per_worker = self.count.div_ceil(workers);
        let n = self.n;
        let mrf: &Mrf = &self.mrf;
        let rule = &self.rule;
        let masters = &self.masters;
        let shared_locals = &self.shared_locals;

        if single_site {
            // In-place: only the active vertex of each replica changes.
            // Per-worker body over a contiguous run of replicas starting
            // at replica index `base`.
            let work = |base: usize, chunk: &mut [Spin], scratch: &mut R::Scratch| {
                for (bi, state) in chunk.chunks_mut(n).enumerate() {
                    let ctx = RoundCtx::new(mrf, masters[base + bi], round);
                    let v = rule
                        .active_vertex(&ctx)
                        .expect("active_vertex must be rule-constant");
                    let mut rng = ctx.resolve_rng(v);
                    // Single-site rules skip the propose phase, so the
                    // (default-valued) shared buffer stands in for locals
                    // — same as SyncChain's fast path, and safely
                    // indexable by any rule.
                    state[v.index()] =
                        rule.resolve(&ctx, v, state, shared_locals, rng.raw(), scratch);
                }
            };
            if workers <= 1 {
                work(0, &mut self.states, &mut self.scratches[0]);
            } else {
                let state_chunks = self.states.chunks_mut(per_worker * n);
                let scratch_iter = self.scratches.iter_mut();
                std::thread::scope(|scope| {
                    for (wi, (chunk, scratch)) in state_chunks.zip(scratch_iter).enumerate() {
                        let work = &work;
                        scope.spawn(move || work(wi * per_worker, chunk, scratch));
                    }
                });
            }
        } else {
            let work = |base: usize,
                        states: &[Spin],
                        next: &mut [Spin],
                        scratch: &mut R::Scratch,
                        locals: &mut Vec<R::Local>,
                        kernel: &mut Option<Box<dyn HotKernel<R::Local>>>| {
                for (bi, (state, next)) in states.chunks(n).zip(next.chunks_mut(n)).enumerate() {
                    let ctx = RoundCtx::new(mrf, masters[base + bi], round);
                    if let Some(k) = kernel.as_mut() {
                        k.round(&ctx, state, next, locals);
                        continue;
                    }
                    let locals_for_replica: &[R::Local] = if share_propose {
                        shared_locals
                    } else {
                        if R::HAS_PROPOSE {
                            super::propose_phase(
                                rule,
                                &ctx,
                                state,
                                locals,
                                std::slice::from_mut(scratch),
                                1,
                            );
                        }
                        locals
                    };
                    super::resolve_phase(
                        rule,
                        &ctx,
                        state,
                        locals_for_replica,
                        next,
                        std::slice::from_mut(scratch),
                        1,
                    );
                }
            };
            if workers <= 1 {
                work(
                    0,
                    &self.states,
                    &mut self.next,
                    &mut self.scratches[0],
                    &mut self.worker_locals[0],
                    &mut self.kernels[0],
                );
            } else {
                let state_chunks = self.states.chunks(per_worker * n);
                let next_chunks = self.next.chunks_mut(per_worker * n);
                let scratch_iter = self.scratches.iter_mut();
                let locals_iter = self.worker_locals.iter_mut();
                let kernel_iter = self.kernels.iter_mut();
                std::thread::scope(|scope| {
                    for (wi, ((((states, next), scratch), locals), kernel)) in state_chunks
                        .zip(next_chunks)
                        .zip(scratch_iter)
                        .zip(locals_iter)
                        .zip(kernel_iter)
                        .enumerate()
                    {
                        let work = &work;
                        scope.spawn(move || {
                            work(wi * per_worker, states, next, scratch, locals, kernel)
                        });
                    }
                });
            }
            std::mem::swap(&mut self.states, &mut self.next);
        }
        self.round += 1;
    }

    /// Advances every replica by `t` rounds.
    pub fn run(&mut self, t: usize) {
        for _ in 0..t {
            self.step_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::rules::{GlauberRule, LocalMetropolisRule, LubyGlauberRule};
    use crate::engine::SyncChain;
    use lsl_graph::generators;
    use lsl_mrf::models;

    #[test]
    fn independent_replicas_match_individual_chains() {
        // Replica b of an independent set must reproduce a SyncChain run
        // under the replica's derived master seed — batching is purely an
        // execution strategy.
        let mrf = models::proper_coloring(generators::torus(4, 4), 9);
        let mut set = ReplicaSet::independent(&mrf, LocalMetropolisRule::new(), 5, 123);
        set.run(20);
        for b in 0..5 {
            let master = derive_seed(123, REPLICA_LABEL, b as u64);
            let mut single = SyncChain::new(&mrf, LocalMetropolisRule::new(), master);
            single.run(20);
            assert_eq!(set.state(b), single.state(), "replica {b} diverged");
        }
    }

    #[test]
    fn sharded_replicas_match_sequential_replicas() {
        let mrf = models::proper_coloring(generators::cycle(9), 4);
        let mut a = ReplicaSet::independent(&mrf, LubyGlauberRule::luby(), 7, 3);
        let mut b = ReplicaSet::independent(&mrf, LubyGlauberRule::luby(), 7, 3);
        b.set_backend(Backend::Parallel { threads: 3 });
        for _ in 0..15 {
            a.step_all();
            b.step_all();
        }
        for i in 0..7 {
            assert_eq!(a.state(i), b.state(i));
        }
    }

    #[test]
    fn coupled_replicas_share_randomness_exactly() {
        // Copies started equal stay equal; the shared-propose fast path
        // must not break the coupling.
        let mrf = models::proper_coloring(generators::torus(4, 4), 9);
        let same = vec![crate::single_site::default_start(&mrf); 3];
        let mut set = ReplicaSet::coupled(&mrf, LocalMetropolisRule::new(), &same, 17);
        for _ in 0..25 {
            set.step_all();
            assert!(set.coalesced());
        }
    }

    #[test]
    fn coupled_matches_per_chain_grand_coupling() {
        // A coupled set must be bit-identical to stepping SyncChains that
        // share one master seed.
        let mrf = models::proper_coloring(generators::torus(4, 4), 16);
        let starts = crate::coupling::adversarial_starts(&mrf, 2, 5);
        let mut set = ReplicaSet::coupled(&mrf, LocalMetropolisRule::new(), &starts, 77);
        let mut singles: Vec<SyncChain<LocalMetropolisRule>> = starts
            .iter()
            .map(|s| SyncChain::with_state(&mrf, LocalMetropolisRule::new(), 77, s.clone()))
            .collect();
        for _ in 0..15 {
            set.step_all();
            for c in singles.iter_mut() {
                c.step();
            }
        }
        for (b, c) in singles.iter().enumerate() {
            assert_eq!(set.state(b), c.state(), "copy {b} diverged");
        }
    }

    #[test]
    fn coupled_copies_coalesce_on_easy_instance() {
        let mrf = models::proper_coloring(generators::torus(4, 4), 24);
        let starts = crate::coupling::adversarial_starts(&mrf, 2, 3);
        let mut set = ReplicaSet::coupled(&mrf, LocalMetropolisRule::new(), &starts, 13);
        let mut coalesced_at = None;
        for t in 0..3000 {
            if set.coalesced() {
                coalesced_at = Some(t);
                break;
            }
            set.step_all();
        }
        assert!(coalesced_at.is_some(), "grand coupling never coalesced");
    }

    #[test]
    fn single_site_replicas_batch() {
        let mrf = models::proper_coloring(generators::cycle(8), 5);
        let mut set = ReplicaSet::independent(&mrf, GlauberRule, 6, 2);
        set.run(300);
        for s in set.states() {
            assert!(mrf.is_feasible(s));
        }
        // And they genuinely differ (independent randomness).
        assert!(!set.coalesced() || mrf.num_vertices() == 0);
    }
}
