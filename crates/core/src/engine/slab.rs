//! Packed per-vertex state storage for the step engine's hot paths.
//!
//! The domain size `q` of every paper model is tiny — 2 for
//! Ising/hardcore spins, a few dozen for colorings — while the engine
//! historically stored each spin as a full [`Spin`] (= `u32`). A
//! [`StateSlab`] packs a configuration at the width the model needs
//! (**byte lanes** for `q ≤ 256`, a **bitset** for `q ≤ 2`), quadrupling
//! (or ×32-ing) the number of spins per cache line in the resolve
//! phase's neighborhood gathers, and shrinking the sharded backend's
//! halo slabs and boundary-exchange buffers by the same factor.
//!
//! The [`StateView`] trait is the read-side abstraction: vertex-step
//! rules are generic over it, so one rule body serves the flat `&[Spin]`
//! slices of the scalar oracle *and* packed slabs, with bit-identical
//! trajectories (packing only changes where bits live, never which
//! spins are read).

use lsl_mrf::Spin;

/// How a [`StateSlab`] stores one spin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Packing {
    /// One [`Spin`] (`u32`) per vertex — the legacy layout, any `q`.
    Wide,
    /// One byte per vertex — models with `q ≤ 256`.
    Byte,
    /// One bit per vertex — two-spin models (Ising, hardcore,
    /// vertex-cover).
    Bit,
}

impl Packing {
    /// The widest-saving packing that can hold spins of domain size `q`.
    pub fn auto_for(q: usize) -> Packing {
        if q <= 2 {
            Packing::Bit
        } else if q <= 256 {
            Packing::Byte
        } else {
            Packing::Wide
        }
    }

    /// Whether this packing can hold every spin in `[0, q)`.
    pub fn supports(self, q: usize) -> bool {
        match self {
            Packing::Wide => true,
            Packing::Byte => q <= 256,
            Packing::Bit => q <= 2,
        }
    }

    /// Bits of storage per spin.
    pub fn bits_per_spin(self) -> u32 {
        match self {
            Packing::Wide => 32,
            Packing::Byte => 8,
            Packing::Bit => 1,
        }
    }
}

/// Canonical spec-string form, accepted back by the `FromStr` impl.
impl std::fmt::Display for Packing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Packing::Wide => write!(f, "wide"),
            Packing::Byte => write!(f, "byte"),
            Packing::Bit => write!(f, "bit"),
        }
    }
}

impl std::str::FromStr for Packing {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "wide" => Ok(Packing::Wide),
            "byte" => Ok(Packing::Byte),
            "bit" => Ok(Packing::Bit),
            other => Err(format!(
                "unknown packing {other:?} (expected wide | byte | bit)"
            )),
        }
    }
}

/// A configuration packed at a chosen width.
///
/// # Example
/// ```
/// use lsl_core::engine::{Packing, StateSlab, StateView};
/// let slab = StateSlab::from_spins(Packing::Bit, &[1, 0, 1, 1]);
/// assert_eq!(slab.get(2), 1);
/// assert_eq!(slab.spin(1), 0);
/// assert_eq!(slab.byte_len(), 1); // four spins in one byte
/// ```
#[derive(Clone, Debug)]
pub enum StateSlab {
    /// `u32` lanes.
    Wide(Vec<Spin>),
    /// `u8` lanes.
    Byte(Vec<u8>),
    /// Bit lanes in `u64` words.
    Bit {
        /// The packed words, `len.div_ceil(64)` of them.
        words: Vec<u64>,
        /// Number of spins stored.
        len: usize,
    },
}

impl StateSlab {
    /// A zeroed slab of `len` spins.
    pub fn new(packing: Packing, len: usize) -> Self {
        match packing {
            Packing::Wide => StateSlab::Wide(vec![0; len]),
            Packing::Byte => StateSlab::Byte(vec![0; len]),
            Packing::Bit => StateSlab::Bit {
                words: vec![0; len.div_ceil(64)],
                len,
            },
        }
    }

    /// Packs a wide configuration.
    ///
    /// # Panics
    /// Panics (in debug builds) if a spin does not fit the packing.
    pub fn from_spins(packing: Packing, spins: &[Spin]) -> Self {
        let mut slab = Self::new(packing, spins.len());
        slab.load(spins);
        slab
    }

    /// The packing in use.
    pub fn packing(&self) -> Packing {
        match self {
            StateSlab::Wide(_) => Packing::Wide,
            StateSlab::Byte(_) => Packing::Byte,
            StateSlab::Bit { .. } => Packing::Bit,
        }
    }

    /// Number of spins stored.
    pub fn len(&self) -> usize {
        match self {
            StateSlab::Wide(v) => v.len(),
            StateSlab::Byte(v) => v.len(),
            StateSlab::Bit { len, .. } => *len,
        }
    }

    /// Whether the slab holds no spins.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of backing storage — what a boundary exchange of this slab
    /// actually ships.
    pub fn byte_len(&self) -> usize {
        match self {
            StateSlab::Wide(v) => v.len() * std::mem::size_of::<Spin>(),
            StateSlab::Byte(v) => v.len(),
            StateSlab::Bit { len, .. } => len.div_ceil(8),
        }
    }

    /// The spin at index `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Spin {
        match self {
            StateSlab::Wide(v) => v[i],
            StateSlab::Byte(v) => v[i] as Spin,
            StateSlab::Bit { words, .. } => ((words[i >> 6] >> (i & 63)) & 1) as Spin,
        }
    }

    /// Stores spin `s` at index `i`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `s` does not fit the packing.
    #[inline]
    pub fn set(&mut self, i: usize, s: Spin) {
        match self {
            StateSlab::Wide(v) => v[i] = s,
            StateSlab::Byte(v) => {
                debug_assert!(s < 256, "spin {s} does not fit byte lanes");
                v[i] = s as u8;
            }
            StateSlab::Bit { words, .. } => {
                debug_assert!(s < 2, "spin {s} does not fit bit lanes");
                let w = &mut words[i >> 6];
                let bit = 1u64 << (i & 63);
                *w = (*w & !bit) | (u64::from(s) << (i & 63));
            }
        }
    }

    /// Overwrites the whole slab from a wide configuration.
    ///
    /// # Panics
    /// Panics if the length differs, or (in debug builds) if a spin does
    /// not fit the packing.
    pub fn load(&mut self, spins: &[Spin]) {
        assert_eq!(spins.len(), self.len(), "slab length mismatch");
        match self {
            StateSlab::Wide(v) => v.copy_from_slice(spins),
            StateSlab::Byte(v) => {
                for (slot, &s) in v.iter_mut().zip(spins) {
                    debug_assert!(s < 256, "spin {s} does not fit byte lanes");
                    *slot = s as u8;
                }
            }
            StateSlab::Bit { words, .. } => {
                words.fill(0);
                for (i, &s) in spins.iter().enumerate() {
                    debug_assert!(s < 2, "spin {s} does not fit bit lanes");
                    words[i >> 6] |= u64::from(s) << (i & 63);
                }
            }
        }
    }

    /// Unpacks the whole slab into a wide configuration.
    ///
    /// # Panics
    /// Panics if the length differs.
    pub fn store(&self, out: &mut [Spin]) {
        assert_eq!(out.len(), self.len(), "slab length mismatch");
        match self {
            StateSlab::Wide(v) => out.copy_from_slice(v),
            StateSlab::Byte(v) => {
                for (slot, &b) in out.iter_mut().zip(v) {
                    *slot = b as Spin;
                }
            }
            StateSlab::Bit { words, .. } => {
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = ((words[i >> 6] >> (i & 63)) & 1) as Spin;
                }
            }
        }
    }
}

/// Read access to a configuration, whatever its representation.
///
/// Vertex-step rules are generic over this, so the scalar oracle
/// (`&[Spin]`) and packed slabs run the *same* rule body — packing can
/// then never change a trajectory, only its memory traffic.
pub trait StateView: Sync {
    /// The spin of vertex index `i`.
    fn spin(&self, i: usize) -> Spin;
}

impl StateView for [Spin] {
    #[inline]
    fn spin(&self, i: usize) -> Spin {
        self[i]
    }
}

impl StateView for Vec<Spin> {
    #[inline]
    fn spin(&self, i: usize) -> Spin {
        self[i]
    }
}

impl StateView for StateSlab {
    #[inline]
    fn spin(&self, i: usize) -> Spin {
        self.get(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_packing_picks_narrowest() {
        assert_eq!(Packing::auto_for(2), Packing::Bit);
        assert_eq!(Packing::auto_for(3), Packing::Byte);
        assert_eq!(Packing::auto_for(256), Packing::Byte);
        assert_eq!(Packing::auto_for(257), Packing::Wide);
    }

    #[test]
    fn packing_supports_and_display_roundtrip() {
        assert!(Packing::Bit.supports(2));
        assert!(!Packing::Bit.supports(3));
        assert!(Packing::Byte.supports(256));
        assert!(!Packing::Byte.supports(257));
        assert!(Packing::Wide.supports(1 << 20));
        for p in [Packing::Wide, Packing::Byte, Packing::Bit] {
            assert_eq!(p.to_string().parse::<Packing>().unwrap(), p);
        }
        assert!("nibble".parse::<Packing>().is_err());
    }

    #[test]
    fn roundtrips_all_packings() {
        let spins: Vec<Spin> = (0..200).map(|i| (i * 7) % 2).collect();
        for p in [Packing::Wide, Packing::Byte, Packing::Bit] {
            let slab = StateSlab::from_spins(p, &spins);
            assert_eq!(slab.len(), spins.len());
            let mut out = vec![0; spins.len()];
            slab.store(&mut out);
            assert_eq!(out, spins, "{p} roundtrip");
            for (i, &s) in spins.iter().enumerate() {
                assert_eq!(slab.get(i), s);
                assert_eq!(slab.spin(i), s);
            }
        }
    }

    #[test]
    fn set_overwrites_bit_lanes_cleanly() {
        let mut slab = StateSlab::new(Packing::Bit, 130);
        slab.set(64, 1);
        slab.set(129, 1);
        assert_eq!(slab.get(64), 1);
        assert_eq!(slab.get(129), 1);
        slab.set(64, 0);
        assert_eq!(slab.get(64), 0);
        assert_eq!(slab.get(129), 1, "clearing one bit must not touch others");
        assert_eq!(slab.get(65), 0);
    }

    #[test]
    fn byte_lens_shrink() {
        let spins = vec![1; 256];
        assert_eq!(
            StateSlab::from_spins(Packing::Wide, &spins).byte_len(),
            1024
        );
        assert_eq!(StateSlab::from_spins(Packing::Byte, &spins).byte_len(), 256);
        assert_eq!(StateSlab::from_spins(Packing::Bit, &spins).byte_len(), 32);
    }

    #[test]
    fn state_view_is_uniform_across_representations() {
        let spins: Vec<Spin> = vec![0, 1, 1, 0, 1];
        let slab = StateSlab::from_spins(Packing::Bit, &spins);
        for i in 0..spins.len() {
            assert_eq!(spins[..].spin(i), slab.spin(i));
            assert_eq!(spins.spin(i), slab.spin(i));
        }
    }
}
