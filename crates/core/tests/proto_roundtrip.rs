//! The wire codec's contract: `parse ∘ print` is the identity for
//! [`JobEvent`]s, [`JobResult`]s, and both frame alphabets, across
//! generated events covering every output and error variant — plus
//! the malformed-frame contract: a server answers garbage with a
//! typed `error` frame and keeps the session (and its other in-flight
//! jobs) alive.

use lsl_core::codec::StateBlob;
use lsl_core::lifecycle::RejectReason;
use lsl_core::net::Server;
use lsl_core::proto::{ClientFrame, ServerFrame};
use lsl_core::sampler::{Algorithm, BuildError};
use lsl_core::service::JobEvent;
use lsl_core::spec::{CommSummary, JobOutput, JobResult, SpecError};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

// ----- strategies over the protocol ----------------------------------

/// Finite-or-infinite f64s with full mantissa variety (NaN is mapped
/// away: it never compares equal, and results never produce it except
/// for empty coalescence summaries, covered by a unit test in proto).
fn arb_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let v = f64::from_bits(bits);
        if v.is_nan() {
            0.5
        } else {
            v
        }
    })
}

fn arb_comm() -> impl Strategy<Value = CommSummary> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
        |(rounds_seen, total_messages, total_bytes, total_changed)| CommSummary {
            rounds_seen,
            total_messages,
            total_bytes,
            total_changed,
        },
    )
}

fn arb_output() -> impl Strategy<Value = JobOutput> {
    prop_oneof![
        (
            any::<u64>(),
            0usize..1_000_000,
            any::<bool>(),
            any::<u64>(),
            proptest::option::of(arb_comm())
        )
            .prop_map(|(rounds, n, feasible, fingerprint, comm)| JobOutput::Run {
                rounds,
                n,
                feasible,
                fingerprint,
                comm,
            }),
        (any::<u64>(), 0usize..1_000_000)
            .prop_map(|(replicas, support)| JobOutput::Distribution { replicas, support }),
        (0usize..100_000, 0usize..100_000, arb_f64()).prop_map(|(rounds, replicas, tv)| {
            JobOutput::Tv {
                rounds,
                replicas,
                tv,
            }
        }),
        (0usize..1_000, arb_f64(), arb_f64(), 0usize..1_000).prop_map(
            |(trials, mean_rounds, std_error, timeouts)| JobOutput::Coalescence {
                trials,
                mean_rounds,
                std_error,
                timeouts,
            }
        ),
    ]
}

/// Spec strings as they appear in results: canonical single-line specs
/// (the codec carries them verbatim to end-of-line).
fn arb_spec_string() -> impl Strategy<Value = String> {
    (3usize..40, 2usize..12, 0u64..1_000_000).prop_map(|(n, q, seed)| {
        format!("graph=cycle:{n} model=coloring:q={q} seed={seed} job=run:rounds=50")
    })
}

/// Packed state blobs across spin widths (1-bit Ising up to 10-bit
/// alphabets), including the empty halo a 1-shard partition ships.
fn arb_blob() -> impl Strategy<Value = StateBlob> {
    (
        prop_oneof![Just(2usize), Just(3), Just(16), Just(1000)],
        0usize..40,
    )
        .prop_flat_map(|(q, n)| {
            proptest::collection::vec(0u32..u32::try_from(q).unwrap(), n)
                .prop_map(move |spins| StateBlob::pack(&spins, q))
        })
}

fn arb_result() -> impl Strategy<Value = JobResult> {
    (arb_spec_string(), arb_output(), arb_f64()).prop_map(|(spec, output, elapsed)| JobResult {
        spec,
        output,
        // Elapsed crosses the wire too (not part of equality, but the
        // codec must not corrupt it).
        elapsed_secs: elapsed,
    })
}

/// Strings that exercise the escaping (separators, percent signs,
/// multi-line payloads — panic messages contain all of these).
fn arb_message() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("plain".to_string()),
        Just("spaces and, commas = and : colons".to_string()),
        Just("100% weird\nmulti\tline\r".to_string()),
        (0usize..64).prop_map(|n| "=%,: \n".repeat(n)),
    ]
}

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::LocalMetropolis),
        Just(Algorithm::LocalMetropolisNoRule3),
        Just(Algorithm::LubyGlauber),
        Just(Algorithm::Glauber),
        Just(Algorithm::Metropolis),
    ]
}

fn arb_build_error() -> impl Strategy<Value = BuildError> {
    prop_oneof![
        Just(BuildError::ZeroReplicas),
        arb_algorithm().prop_map(|algorithm| BuildError::SchedulerNotApplicable { algorithm }),
        arb_f64().prop_map(|p| BuildError::InvalidBernoulliProbability { p }),
        (0usize..10_000, 0usize..10_000)
            .prop_map(|(expected, got)| BuildError::StartLength { expected, got }),
        (0usize..10_000, 0usize..10_000)
            .prop_map(|(expected, got)| BuildError::StartCount { expected, got }),
        Just(BuildError::EmptyModel),
        Just(BuildError::StartRequiredForCsp),
        prop_oneof![
            Just("Glauber"),
            Just("Metropolis"),
            Just("LocalMetropolis(no rule 3)"),
            Just("the distribution job"),
            Just("the coalescence job"),
            Just("replica batching"),
        ]
        .prop_map(|what| BuildError::UnsupportedOnCsp { what }),
        arb_message().prop_map(|reason| BuildError::InvalidHotPath { reason }),
    ]
}

/// Every admission-rejection reason the service can emit.
fn arb_reject_reason() -> impl Strategy<Value = RejectReason> {
    prop_oneof![
        (0usize..10_000).prop_map(|cap| RejectReason::QueueFull { cap }),
        (0usize..10_000).prop_map(|cap| RejectReason::SessionBusy { cap }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(budget, cap)| RejectReason::RoundBudget { budget, cap }),
        Just(RejectReason::Draining),
    ]
}

fn arb_spec_error() -> impl Strategy<Value = SpecError> {
    prop_oneof![
        arb_message().prop_map(|token| SpecError::NotKeyValue { token }),
        arb_message().prop_map(|key| SpecError::UnknownKey { key }),
        arb_message().prop_map(|key| SpecError::DuplicateKey { key }),
        prop_oneof![Just("graph"), Just("model")].prop_map(|key| SpecError::MissingKey { key }),
        (
            prop_oneof![Just("graph family"), Just("model"), Just("job")],
            arb_message()
        )
            .prop_map(|(kind, name)| SpecError::UnknownScenario { kind, name }),
        (arb_message(), arb_message())
            .prop_map(|(key, message)| SpecError::BadValue { key, message }),
        arb_build_error().prop_map(SpecError::Combo),
        arb_message().prop_map(|message| SpecError::Unsupported { message }),
        arb_message().prop_map(|message| SpecError::JobPanicked { message }),
        Just(SpecError::ServiceStopped),
        Just(SpecError::Cancelled),
        arb_reject_reason().prop_map(SpecError::Rejected),
    ]
}

fn arb_event() -> impl Strategy<Value = JobEvent> {
    prop_oneof![
        Just(JobEvent::Accepted),
        Just(JobEvent::Started),
        (any::<u64>(), any::<u64>()).prop_map(|(round, of)| JobEvent::Progress { round, of }),
        arb_result().prop_map(JobEvent::Finished),
        arb_spec_error().prop_map(JobEvent::Failed),
        arb_reject_reason().prop_map(|reason| JobEvent::Rejected { reason }),
        Just(JobEvent::Cancelled),
    ]
}

fn arb_server_frame() -> impl Strategy<Value = ServerFrame> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(id, jobs)| ServerFrame::Submitted { id, jobs }),
        (any::<u64>(), any::<u64>(), arb_event())
            .prop_map(|(id, index, event)| ServerFrame::Event { id, index, event }),
        (proptest::option::of(any::<u64>()), arb_message())
            .prop_map(|(id, message)| ServerFrame::Error { id, message }),
        any::<u64>().prop_map(|nonce| ServerFrame::Pong { nonce }),
        (any::<u64>(), any::<u64>(), arb_blob())
            .prop_map(|(id, round, blob)| ServerFrame::ShardSync { id, round, blob }),
        (any::<u64>(), any::<u64>(), arb_blob())
            .prop_map(|(id, rounds, blob)| ServerFrame::ShardDone { id, rounds, blob }),
    ]
}

/// The coordinator-side frames the cluster layer added: liveness
/// probes and the shard-session alphabet (the spec rides verbatim to
/// end-of-line, exactly like `submit`).
fn arb_cluster_client_frame() -> impl Strategy<Value = ClientFrame> {
    prop_oneof![
        any::<u64>().prop_map(|nonce| ClientFrame::Ping { nonce }),
        (any::<u64>(), any::<u32>(), any::<u32>(), arb_spec_string()).prop_map(
            |(id, shard, of, spec)| ClientFrame::ShardInit {
                id,
                shard,
                of,
                spec,
            }
        ),
        (any::<u64>(), any::<u64>(), arb_blob())
            .prop_map(|(id, round, blob)| ClientFrame::ShardSync { id, round, blob }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The headline codec contract: `parse(print(event)) == event`,
    /// and the printed form is a fixed point.
    #[test]
    fn job_events_roundtrip(event in arb_event()) {
        let printed = event.to_string();
        let reparsed: JobEvent = printed.parse().expect("canonical form must parse");
        prop_assert_eq!(&reparsed, &event, "wire form: {}", printed);
        prop_assert_eq!(reparsed.to_string(), printed);
    }

    #[test]
    fn job_results_roundtrip(result in arb_result()) {
        let printed = result.to_string();
        let reparsed: JobResult = printed.parse().expect("canonical form must parse");
        prop_assert_eq!(&reparsed, &result, "wire form: {}", printed);
        // Elapsed is outside PartialEq; check it separately, bitwise.
        prop_assert_eq!(reparsed.elapsed_secs.to_bits(), result.elapsed_secs.to_bits());
        prop_assert_eq!(reparsed.to_string(), printed);
    }

    #[test]
    fn server_frames_roundtrip(frame in arb_server_frame()) {
        let printed = frame.to_string();
        prop_assert!(!printed.contains('\n'), "frames are single lines: {}", printed);
        let reparsed: ServerFrame = printed.parse().expect("canonical form must parse");
        prop_assert_eq!(&reparsed, &frame, "wire form: {}", printed);
        prop_assert_eq!(reparsed.to_string(), printed);
    }

    #[test]
    fn client_frames_roundtrip(id in any::<u64>(), spec in arb_spec_string()) {
        let frame = ClientFrame::Submit { id, spec };
        let printed = frame.to_string();
        let reparsed: ClientFrame = printed.parse().expect("canonical form must parse");
        prop_assert_eq!(reparsed, frame);
    }

    /// The cluster frames round-trip like everything else: pings,
    /// shard-init lines, and bit-packed shard-sync blobs in both
    /// directions, single-line and fixed-point.
    #[test]
    fn cluster_frames_roundtrip(frame in arb_cluster_client_frame()) {
        let printed = frame.to_string();
        prop_assert!(!printed.contains('\n'), "frames are single lines: {}", printed);
        let reparsed: ClientFrame = printed.parse().expect("canonical form must parse");
        prop_assert_eq!(&reparsed, &frame, "wire form: {}", printed);
        prop_assert_eq!(reparsed.to_string(), printed);
    }

    #[test]
    fn cancel_frames_roundtrip(id in any::<u64>()) {
        let frame = ClientFrame::Cancel { id };
        let printed = frame.to_string();
        let reparsed: ClientFrame = printed.parse().expect("canonical form must parse");
        prop_assert_eq!(reparsed, frame);
        prop_assert_eq!(reparsed.to_string(), printed);
    }
}

/// The two argument-less lifecycle frames have fixed wire forms.
#[test]
fn admin_frames_have_fixed_wire_forms() {
    assert_eq!(ClientFrame::Shutdown.to_string(), "shutdown");
    assert_eq!(
        "shutdown".parse::<ClientFrame>().unwrap(),
        ClientFrame::Shutdown
    );
    assert_eq!(
        "cancel id=7".parse::<ClientFrame>().unwrap(),
        ClientFrame::Cancel { id: 7 }
    );
    assert_eq!(ClientFrame::Ping { nonce: 9 }.to_string(), "ping nonce=9");
    assert_eq!(
        "pong nonce=9".parse::<ServerFrame>().unwrap(),
        ServerFrame::Pong { nonce: 9 }
    );
    // Trailing garbage is malformed, not silently ignored.
    assert!("shutdown now".parse::<ClientFrame>().is_err());
    assert!("cancel id=7 extra".parse::<ClientFrame>().is_err());
    assert!("ping nonce=9 extra".parse::<ClientFrame>().is_err());
}

/// The malformed-frame contract, end to end on a live session: a
/// garbage line gets a typed `error` frame (not a disconnect), a
/// syntactically fine submit with a rejected spec gets an `error`
/// carrying the id, and a job submitted afterwards on the *same*
/// connection still runs to completion.
#[test]
fn malformed_frames_answer_typed_errors_and_keep_the_session() {
    let server = Server::bind("127.0.0.1:0", 1).expect("bind an ephemeral port");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let read_frame = |reader: &mut BufReader<TcpStream>| -> ServerFrame {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read") > 0,
            "server hung up on a malformed frame"
        );
        line.trim_end().parse().expect("server speaks the protocol")
    };

    // 1. Not a frame: typed session-level error, no id.
    writeln!(writer, "GET / HTTP/1.1").unwrap();
    match read_frame(&mut reader) {
        ServerFrame::Error { id: None, message } => {
            assert!(message.contains("malformed frame"), "{message}");
        }
        other => panic!("expected a session-level error, got {other:?}"),
    }

    // 2. A well-formed submit whose spec is garbage: error with the id.
    writeln!(writer, "submit id=42 spec=graph=cycle:2 model=coloring:q=5").unwrap();
    match read_frame(&mut reader) {
        ServerFrame::Error {
            id: Some(42),
            message,
        } => {
            assert!(message.contains("cycle"), "{message}");
        }
        other => panic!("expected an id-tagged error, got {other:?}"),
    }

    // 3. The session survived both: a real job completes on it.
    writeln!(
        writer,
        "submit id=43 spec=graph=cycle:8 model=coloring:q=5 seed=3 job=run:rounds=20"
    )
    .unwrap();
    let direct: JobResult = "graph=cycle:8 model=coloring:q=5 seed=3 job=run:rounds=20"
        .parse::<lsl_core::spec::JobSpec>()
        .unwrap()
        .run()
        .unwrap();
    loop {
        if let ServerFrame::Event {
            id: 43,
            index: 0,
            event: JobEvent::Finished(result),
        } = read_frame(&mut reader)
        {
            assert_eq!(
                result, direct,
                "the surviving session serves bit-identically"
            );
            break;
        }
    }
}
