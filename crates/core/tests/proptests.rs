//! Property-based tests for the sampling chains: structural invariants
//! that must hold for every model, seed, and schedule.
//!
//! The deprecated legacy constructors are exercised on purpose — they
//! are shims over the same wiring as the sampler facade, and
//! `tests/sampler_facade.rs` pins the two surfaces bit-identical.
#![allow(deprecated)]

use lsl_core::coupling::hamming;
use lsl_core::engine::replicas::ReplicaSet;
use lsl_core::engine::rules::{GlauberRule, LocalMetropolisRule, LubyGlauberRule};
use lsl_core::engine::{Backend, SyncChain, SyncRule};
use lsl_core::kernel::{glauber_kernel, local_metropolis_kernel, luby_set_distribution};
use lsl_core::local_metropolis::LocalMetropolis;
use lsl_core::luby_glauber::LubyGlauber;
use lsl_core::schedule::{LubyScheduler, Scheduler};
use lsl_core::single_site::GlauberChain;
use lsl_core::Chain;
use lsl_graph::generators;
use lsl_local::rng::Xoshiro256pp;
use lsl_mrf::gibbs::Enumeration;
use lsl_mrf::models;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn local_metropolis_preserves_feasibility(seed in 0u64..5000, q in 4usize..8) {
        // Once proper, forever proper (absorption direction of Thm 4.1).
        let mrf = models::proper_coloring(generators::cycle(6), q);
        let mut chain = LocalMetropolis::with_state(&mrf, vec![0, 1, 0, 1, 0, 1]);
        let mut rng = Xoshiro256pp::seed_from(seed);
        for _ in 0..20 {
            chain.step(&mut rng);
            prop_assert!(mrf.is_feasible(chain.state()));
        }
    }

    #[test]
    fn luby_glauber_spins_in_range(seed in 0u64..5000) {
        let mrf = models::proper_coloring(generators::torus(3, 3), 9);
        let mut chain = LubyGlauber::new(&mrf);
        let mut rng = Xoshiro256pp::seed_from(seed);
        chain.run(10, &mut rng);
        prop_assert!(chain.state().iter().all(|&c| c < 9));
    }

    #[test]
    fn glauber_single_site_moves(seed in 0u64..5000) {
        // One Glauber step changes at most one coordinate.
        let mrf = models::proper_coloring(generators::cycle(5), 4);
        let mut chain = GlauberChain::with_state(&mrf, vec![0, 1, 0, 1, 2]);
        let mut rng = Xoshiro256pp::seed_from(seed);
        let before = chain.state().to_vec();
        chain.step(&mut rng);
        prop_assert!(hamming(&before, chain.state()) <= 1);
    }

    #[test]
    fn luby_scheduler_respects_independence(seed in 0u64..5000, rows in 3usize..5, cols in 3usize..5) {
        let g = generators::torus(rows, cols);
        let mut sched = LubyScheduler::new();
        let mut out = vec![false; g.num_vertices()];
        let mut rng = Xoshiro256pp::seed_from(seed);
        sched.sample(&g, &mut rng, &mut out);
        prop_assert!(g.is_independent_set(&out));
        // Nonempty: the global maximum is always selected.
        prop_assert!(out.iter().any(|&b| b));
    }

    #[test]
    fn identical_seeds_give_identical_trajectories(seed in 0u64..5000) {
        let mrf = models::hardcore(generators::cycle(6), 1.3);
        let mut a = LocalMetropolis::new(&mrf);
        let mut b = LocalMetropolis::new(&mrf);
        let mut ra = Xoshiro256pp::seed_from(seed);
        let mut rb = Xoshiro256pp::seed_from(seed);
        for _ in 0..15 {
            a.step(&mut ra);
            b.step(&mut rb);
            prop_assert_eq!(a.state(), b.state());
        }
    }

    #[test]
    fn kernels_are_stochastic_and_gibbs_stationary(lambda in 0.3f64..3.0) {
        let mrf = models::hardcore(generators::path(3), lambda);
        let pi = Enumeration::new(&mrf).unwrap().distribution();
        for k in [glauber_kernel(&mrf), local_metropolis_kernel(&mrf, true)] {
            prop_assert!(k.stationarity_residual(&pi) < 1e-10);
            prop_assert!(k.detailed_balance_residual(&pi) < 1e-10);
        }
    }

    #[test]
    fn luby_set_distribution_inclusion_exact(n in 2usize..6) {
        // Pr[v ∈ I] = 1/(deg(v)+1), exactly, on random trees too.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64);
        let g = generators::random_tree(n, &mut rng);
        let sets = luby_set_distribution(&g);
        for v in g.vertices() {
            let p: f64 = sets
                .iter()
                .filter(|&&(mask, _)| mask >> v.index() & 1 == 1)
                .map(|&(_, p)| p)
                .sum();
            let expect = 1.0 / (g.degree(v) as f64 + 1.0);
            prop_assert!((p - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn ising_chain_spins_binary(beta in 0.2f64..3.0, seed in 0u64..1000) {
        let mrf = models::ising(generators::grid(3, 3), beta);
        let mut chain = LocalMetropolis::new(&mrf);
        let mut rng = Xoshiro256pp::seed_from(seed);
        chain.run(10, &mut rng);
        prop_assert!(chain.state().iter().all(|&s| s < 2));
    }
}

/// The engine's determinism contract: for a fixed master seed, the
/// parallel backend must produce the state sequence of the sequential
/// backend bit-for-bit, on every graph family and for both synchronous
/// chains.
fn assert_backends_agree<R: SyncRule + Clone>(
    mrf: &lsl_mrf::Mrf,
    rule: R,
    master: u64,
    threads: usize,
    rounds: usize,
) {
    let mut seq = SyncChain::new(mrf, rule.clone(), master);
    let mut par = SyncChain::new(mrf, rule, master);
    par.set_backend(Backend::Parallel { threads });
    for r in 0..rounds {
        seq.step();
        par.step();
        assert_eq!(
            seq.state(),
            par.state(),
            "backends diverged at round {r} with {threads} threads"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_backends_bit_identical_on_torus(
        master in 0u64..10_000, rows in 3usize..6, cols in 3usize..6, threads in 2usize..5
    ) {
        let mrf = models::proper_coloring(generators::torus(rows, cols), 9);
        assert_backends_agree(&mrf, LocalMetropolisRule::new(), master, threads, 12);
        assert_backends_agree(&mrf, LubyGlauberRule::luby(), master, threads, 12);
    }

    #[test]
    fn engine_backends_bit_identical_on_cycle(
        master in 0u64..10_000, len in 4usize..24, threads in 2usize..7
    ) {
        let mrf = models::proper_coloring(generators::cycle(len), 5);
        assert_backends_agree(&mrf, LocalMetropolisRule::new(), master, threads, 12);
        assert_backends_agree(&mrf, LubyGlauberRule::luby(), master, threads, 12);
    }

    #[test]
    fn engine_backends_bit_identical_on_random_graphs(
        master in 0u64..10_000, seed in 0u64..500, threads in 2usize..5
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::gnp(14, 0.3, &mut rng);
        let q = 2 * g.max_degree() + 2;
        let mrf = models::proper_coloring(g, q.max(3));
        assert_backends_agree(&mrf, LocalMetropolisRule::new(), master, threads, 12);
        assert_backends_agree(&mrf, LubyGlauberRule::luby(), master, threads, 12);
    }

    #[test]
    fn engine_backends_bit_identical_on_soft_models(
        master in 0u64..10_000, beta in 0.2f64..2.0
    ) {
        // Soft constraints exercise the fractional edge coins.
        let mrf = models::ising(generators::torus(4, 4), beta);
        assert_backends_agree(&mrf, LocalMetropolisRule::new(), master, 3, 12);
    }

    #[test]
    fn replica_sharding_is_pure_execution_strategy(
        seed in 0u64..10_000, count in 2usize..7, threads in 2usize..5
    ) {
        // Sharding replicas over threads must not change any trajectory.
        let mrf = models::proper_coloring(generators::torus(3, 3), 8);
        let mut a = ReplicaSet::independent(&mrf, GlauberRule, count, seed);
        let mut b = ReplicaSet::independent(&mrf, GlauberRule, count, seed);
        b.set_backend(Backend::Parallel { threads });
        a.run(30);
        b.run(30);
        for i in 0..count {
            prop_assert_eq!(a.state(i), b.state(i));
        }
    }
}
