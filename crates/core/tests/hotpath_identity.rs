//! Bit-identity of the lane-batched hot path with the scalar oracle.
//!
//! The tentpole claim of the hot-path engine is that packing, block
//! RNG, and kernel restructuring are *implementation* choices: for
//! every model, seed, packing, and RNG mode, the kernel trajectory is
//! bit-for-bit the scalar phases' trajectory. These properties pin that
//! across algorithms (LocalMetropolis with and without rule 3,
//! LubyGlauber under two schedulers), hard and soft constraints (edge
//! coins deterministic vs fractional), and graph families (torus,
//! cycle, G(n, p)).

use lsl_core::engine::rules::{LocalMetropolisRule, LubyGlauberRule};
use lsl_core::engine::{HotPath, Packing, SyncChain, SyncRule};
use lsl_core::schedule::BernoulliFilterScheduler;
use lsl_graph::generators;
use lsl_mrf::models;
use proptest::prelude::*;

/// Every lane variant a `q`-spin model admits: the packing × RNG-mode
/// matrix, with bit lanes included only when they can hold the spins.
fn lane_variants(q: usize) -> Vec<HotPath> {
    let mut packings = vec![None, Some(Packing::Wide), Some(Packing::Byte)];
    if q == 2 {
        packings.push(Some(Packing::Bit));
    }
    packings
        .into_iter()
        .flat_map(|packing| {
            [true, false]
                .into_iter()
                .map(move |block_rng| HotPath::Lanes { packing, block_rng })
        })
        .collect()
}

/// Steps a scalar-oracle chain and one kernel chain per lane variant in
/// lockstep, comparing full states every round.
fn assert_hotpaths_agree<R: SyncRule + Clone>(mrf: &lsl_mrf::Mrf, rule: R, master: u64) {
    let mut oracle = SyncChain::new(mrf, rule.clone(), master);
    oracle.set_hotpath(HotPath::Scalar);
    assert!(
        !oracle.kernel_engaged(),
        "the scalar oracle must run the scalar phases"
    );
    let mut lanes: Vec<(HotPath, SyncChain<R>)> = lane_variants(mrf.q())
        .into_iter()
        .map(|hp| {
            let mut chain = SyncChain::new(mrf, rule.clone(), master);
            chain.set_hotpath(hp);
            assert!(chain.kernel_engaged(), "hotpath={hp} built no kernel");
            (hp, chain)
        })
        .collect();
    for round in 0..8 {
        oracle.step();
        for (hp, chain) in &mut lanes {
            chain.step();
            assert_eq!(
                oracle.state(),
                chain.state(),
                "hotpath={hp} diverged from the scalar oracle at round {round}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn local_metropolis_lanes_match_scalar_on_torus_coloring(
        master in 0u64..10_000, rows in 3usize..6, cols in 3usize..6
    ) {
        // Hard constraints: every edge coin is deterministic.
        let mrf = models::proper_coloring(generators::torus(rows, cols), 9);
        assert_hotpaths_agree(&mrf, LocalMetropolisRule::new(), master);
    }

    #[test]
    fn local_metropolis_lanes_match_scalar_on_cycle_ising(
        master in 0u64..10_000, len in 4usize..24, beta in 0.2f64..2.0
    ) {
        // q = 2 and soft constraints: the bit-packed slabs, the
        // interleaved edge pass, integer coin thresholds, and the
        // vectorized proposal ladder all engage here.
        let mrf = models::ising(generators::cycle(len), beta);
        assert_hotpaths_agree(&mrf, LocalMetropolisRule::new(), master);
    }

    #[test]
    fn local_metropolis_lanes_match_scalar_on_gnp_hardcore(
        master in 0u64..10_000, seed in 0u64..500, lambda in 0.3f64..3.0
    ) {
        // q = 2 and hard constraints (the coin-free bit path), with and
        // without the rule-3 factor, on irregular graphs.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::gnp(12, 0.3, &mut rng);
        let mrf = models::hardcore(g, lambda);
        assert_hotpaths_agree(&mrf, LocalMetropolisRule::new(), master);
        assert_hotpaths_agree(&mrf, LocalMetropolisRule::without_rule3(), master);
    }

    #[test]
    fn luby_glauber_lanes_match_scalar(
        master in 0u64..10_000, rows in 3usize..6, cols in 3usize..6
    ) {
        let mrf = models::proper_coloring(generators::torus(rows, cols), 9);
        assert_hotpaths_agree(&mrf, LubyGlauberRule::luby(), master);
    }

    #[test]
    fn bernoulli_scheduled_lanes_match_scalar(
        master in 0u64..10_000, len in 4usize..20, p in 0.1f64..0.9
    ) {
        // A scheduler whose marks draw a variable number of times per
        // stream — the seed-block (not head-block) kernel path.
        let mrf = models::proper_coloring(generators::cycle(len), 5);
        let rule = LubyGlauberRule::with_scheduler(BernoulliFilterScheduler::new(p));
        assert_hotpaths_agree(&mrf, rule, master);
    }
}
