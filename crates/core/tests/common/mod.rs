//! Strategies shared by the integration suites: generators over the
//! whole scenario registry (every graph family × model × workload
//! knob), used by the spec-grammar roundtrip suite and the result-store
//! identity suite. Each test binary compiles its own copy via
//! `mod common;` — unused strategies in one binary are expected.
#![allow(dead_code)]

use lsl_core::engine::{Backend, HotPath, Packing};
use lsl_core::sampler::{Algorithm, Sched};
use lsl_core::spec::{GraphSpec, JobKind, JobSpec, ModelSpec};
use lsl_graph::partition::Partitioner;
use proptest::prelude::*;

pub fn arb_graph() -> impl Strategy<Value = GraphSpec> {
    prop_oneof![
        (1usize..40).prop_map(|n| GraphSpec::Path { n }),
        (3usize..40).prop_map(|n| GraphSpec::Cycle { n }),
        (1usize..9).prop_map(|n| GraphSpec::Complete { n }),
        (1usize..6, 1usize..6).prop_map(|(a, b)| GraphSpec::CompleteBipartite { a, b }),
        (1usize..12).prop_map(|n| GraphSpec::Star { n }),
        (2usize..7, 2usize..7).prop_map(|(rows, cols)| GraphSpec::Grid { rows, cols }),
        (3usize..7, 3usize..7).prop_map(|(rows, cols)| GraphSpec::Torus { rows, cols }),
        (1u32..5).prop_map(|dim| GraphSpec::Hypercube { dim }),
        (1usize..10).prop_map(|pages| GraphSpec::Book { pages }),
        (1usize..6, 1usize..4).prop_map(|(spine, legs)| GraphSpec::Caterpillar { spine, legs }),
        (4usize..24, 0u32..=10).prop_map(|(n, tenths)| GraphSpec::Gnp {
            n,
            p: f64::from(tenths) / 10.0,
        }),
        // d < n and n*d even, by construction.
        (2usize..5, 3usize..8).prop_map(|(half_d, extra)| {
            let d = 2 * half_d - 2;
            GraphSpec::RandomRegular { n: d + extra, d }
        }),
        (1usize..20).prop_map(|n| GraphSpec::RandomTree { n }),
    ]
}

pub fn arb_model() -> impl Strategy<Value = ModelSpec> {
    prop_oneof![
        (2usize..12).prop_map(|q| ModelSpec::Coloring { q }),
        (2usize..9, 1usize..3).prop_map(|(q, size)| ModelSpec::ListColoring {
            q,
            size: size.min(q)
        }),
        (1u32..=30).prop_map(|tenths| ModelSpec::Hardcore {
            lambda: f64::from(tenths) / 10.0,
        }),
        Just(ModelSpec::IndependentSet),
        Just(ModelSpec::VertexCover),
        (1u32..=30).prop_map(|tenths| ModelSpec::Ising {
            beta: f64::from(tenths) / 10.0,
        }),
        (2usize..5, 1u32..=30).prop_map(|(q, tenths)| ModelSpec::Potts {
            q,
            beta: f64::from(tenths) / 10.0,
        }),
        Just(ModelSpec::DominatingSet),
        Just(ModelSpec::Mis),
    ]
}

pub fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::LocalMetropolis),
        Just(Algorithm::LocalMetropolisNoRule3),
        Just(Algorithm::LubyGlauber),
        Just(Algorithm::Glauber),
        Just(Algorithm::Metropolis),
    ]
}

pub fn arb_sched() -> impl Strategy<Value = Sched> {
    prop_oneof![
        Just(Sched::Luby),
        Just(Sched::Singleton),
        (1u32..=10).prop_map(|tenths| Sched::Bernoulli(f64::from(tenths) / 10.0)),
        Just(Sched::Chromatic),
    ]
}

pub fn arb_backend() -> impl Strategy<Value = Backend> {
    prop_oneof![
        Just(Backend::Sequential),
        (0usize..8).prop_map(|threads| Backend::Parallel { threads }),
        (0usize..8).prop_map(|shards| Backend::Sharded { shards }),
    ]
}

pub fn arb_partitioner() -> impl Strategy<Value = Partitioner> {
    prop_oneof![
        Just(Partitioner::Contiguous),
        Just(Partitioner::Bfs),
        Just(Partitioner::GreedyEdgeCut),
    ]
}

pub fn arb_hotpath() -> impl Strategy<Value = HotPath> {
    let packing = prop_oneof![
        Just(None),
        Just(Some(Packing::Wide)),
        Just(Some(Packing::Byte)),
        Just(Some(Packing::Bit)),
    ];
    prop_oneof![
        Just(HotPath::Scalar),
        (packing, any::<bool>())
            .prop_map(|(packing, block_rng)| HotPath::Lanes { packing, block_rng }),
    ]
}

pub fn arb_job() -> impl Strategy<Value = JobKind> {
    prop_oneof![
        (1usize..500).prop_map(|rounds| JobKind::Run { rounds }),
        (1usize..100, 1usize..200)
            .prop_map(|(rounds, replicas)| JobKind::Distribution { rounds, replicas }),
        (1usize..100, 1usize..200).prop_map(|(rounds, replicas)| JobKind::Tv { rounds, replicas }),
        (1usize..5, 100usize..10_000)
            .prop_map(|(trials, max_rounds)| JobKind::Coalescence { trials, max_rounds }),
        (1usize..500, 1usize..8).prop_map(|(rounds, count)| JobKind::Sample { rounds, count }),
        (1usize..500, 1usize..50).prop_map(|(rounds, every)| JobKind::Stream { rounds, every }),
    ]
}

/// Jobs small enough to *execute* (not just parse) inside a property
/// test — the grammar-sized [`arb_job`] ranges are fine to print but
/// would make a 200-replica distribution per case too slow.
pub fn arb_small_job() -> impl Strategy<Value = JobKind> {
    prop_oneof![
        (1usize..40).prop_map(|rounds| JobKind::Run { rounds }),
        (1usize..10, 1usize..12)
            .prop_map(|(rounds, replicas)| JobKind::Distribution { rounds, replicas }),
        (1usize..10, 1usize..12).prop_map(|(rounds, replicas)| JobKind::Tv { rounds, replicas }),
        (1usize..3, 10usize..100)
            .prop_map(|(trials, max_rounds)| JobKind::Coalescence { trials, max_rounds }),
        (1usize..40, 1usize..4).prop_map(|(rounds, count)| JobKind::Sample { rounds, count }),
        (1usize..40, 1usize..10).prop_map(|(rounds, every)| JobKind::Stream { rounds, every }),
    ]
}

prop_compose! {
    pub fn arb_spec()(
        graph in arb_graph(),
        model in arb_model(),
        algorithm in proptest::option::of(arb_algorithm()),
        scheduler in proptest::option::of(arb_sched()),
        backend in proptest::option::of(arb_backend()),
        partitioner in proptest::option::of(arb_partitioner()),
        hotpath in proptest::option::of(arb_hotpath()),
        seed in proptest::option::of(0u64..1_000_000),
        graph_seed in proptest::option::of(0u64..1_000_000),
        burn_in in proptest::option::of(0usize..100),
        job in proptest::option::of(arb_job()),
    ) -> JobSpec {
        JobSpec {
            graph,
            model,
            algorithm,
            scheduler,
            backend,
            partitioner,
            hotpath,
            seed,
            graph_seed,
            burn_in,
            job,
        }
    }
}

prop_compose! {
    /// Like [`arb_spec`], but guaranteed cheap to actually run: small
    /// workloads ([`arb_small_job`]), bounded burn-in. The spec may
    /// still *fail* to run (incompatible algorithm/model combos are
    /// part of the space) — callers treat `Err` as a valid outcome.
    pub fn arb_runnable_spec()(
        graph in arb_graph(),
        model in arb_model(),
        algorithm in proptest::option::of(arb_algorithm()),
        scheduler in proptest::option::of(arb_sched()),
        backend in proptest::option::of(arb_backend()),
        partitioner in proptest::option::of(arb_partitioner()),
        hotpath in proptest::option::of(arb_hotpath()),
        seed in proptest::option::of(0u64..1_000_000),
        graph_seed in proptest::option::of(0u64..1_000_000),
        burn_in in proptest::option::of(0usize..10),
        job in proptest::option::of(arb_small_job()),
    ) -> JobSpec {
        JobSpec {
            graph,
            model,
            algorithm,
            scheduler,
            backend,
            partitioner,
            hotpath,
            seed,
            graph_seed,
            burn_in,
            job,
        }
    }
}
