//! The result store's contract: a store **hit is bit-identical to a
//! fresh run**. The determinism guarantee makes this a strong, simple
//! property — a [`JobResult`] is a pure function of its canonical spec
//! line, the wire line is the on-disk format, and `parse ∘ print = id`
//! — so replaying a stored line must reproduce the fresh result
//! *including* its elapsed-time field (the stored entry is returned
//! verbatim, not recomputed). Plus the bookkeeping: hit/miss counters,
//! `import_if_newer` mtime semantics, and capacity eviction stats.

use lsl_core::lifecycle::Limits;
use lsl_core::service::Service;
use lsl_core::spec::{JobOutput, JobResult};
use lsl_core::store::ResultStore;
use proptest::prelude::*;
use std::path::PathBuf;

mod common;
use common::arb_runnable_spec;

/// A per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lsl-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A hand-built result (the store never inspects outputs, so a small
/// synthetic `Run` is enough to exercise the file plumbing).
fn synthetic(spec: &str, elapsed_secs: f64) -> JobResult {
    JobResult {
        spec: spec.to_string(),
        output: JobOutput::Run {
            rounds: 5,
            n: 8,
            feasible: true,
            fingerprint: 0x5eed,
            comm: None,
        },
        elapsed_secs,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property, across random registry-wide specs: run
    /// once through a store-backed service, run again through a second
    /// service over the same directory — the replayed answer is
    /// byte-for-byte the fresh one (its wire line, elapsed included),
    /// and the second service's counters show the hit. Specs that
    /// *fail* (incompatible combos are part of the space) must fail
    /// identically instead.
    #[test]
    fn store_hits_are_bit_identical_to_fresh_runs(spec in arb_runnable_spec()) {
        let dir = scratch("identity");
        let first = Service::with_store(
            1,
            Limits::default(),
            ResultStore::open(&dir).expect("open the scratch store"),
        );
        let fresh = first.submit(spec.clone()).wait();
        drop(first);
        let second = Service::with_store(
            1,
            Limits::default(),
            ResultStore::open(&dir).expect("reopen the scratch store"),
        );
        let replayed = second.submit(spec).wait();
        match (fresh, replayed) {
            (Ok(fresh), Ok(replayed)) => {
                prop_assert_eq!(
                    replayed.to_string(),
                    fresh.to_string(),
                    "a store hit must replay the stored line verbatim"
                );
                let stats = second.store_stats().expect("the service has a store");
                prop_assert!(stats.hits >= 1, "the replay must come from disk: {:?}", stats);
            }
            (Err(fresh), Err(replayed)) => {
                // Errors are not stored; determinism makes the rerun
                // fail the same way.
                prop_assert_eq!(replayed, fresh);
            }
            (fresh, replayed) => {
                prop_assert!(false, "outcomes diverged: {:?} vs {:?}", fresh, replayed);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `import_if_newer` copies entries that are missing locally or newer
/// in the source (by mtime) — and nothing else.
#[test]
fn import_if_newer_copies_missing_and_newer_entries_only() {
    let src_dir = scratch("import-src");
    let dst_dir = scratch("import-dst");
    let src = ResultStore::open(&src_dir).unwrap();
    let dst = ResultStore::open(&dst_dir).unwrap();

    let stale = "graph=cycle:8 model=coloring:q=5 seed=1 job=run:rounds=5";
    let missing = "graph=cycle:9 model=coloring:q=5 seed=2 job=run:rounds=5";
    let kept = "graph=cycle:10 model=coloring:q=5 seed=3 job=run:rounds=5";

    // `kept` is newer locally than in the source; `stale` is older.
    src.put(&synthetic(kept, 0.25)).unwrap();
    dst.put(&synthetic(stale, 1.0)).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    src.put(&synthetic(stale, 9.0)).unwrap();
    src.put(&synthetic(missing, 3.0)).unwrap();
    dst.put(&synthetic(kept, 0.75)).unwrap();

    let imported = dst.import_if_newer(src.dir()).unwrap();
    assert_eq!(imported, 2, "stale (newer in src) + missing, not kept");
    assert_eq!(dst.len(), 3);
    // The imported entries replay the source's bytes...
    assert_eq!(
        dst.get(stale).unwrap().elapsed_secs.to_bits(),
        9.0f64.to_bits()
    );
    assert_eq!(
        dst.get(missing).unwrap().elapsed_secs.to_bits(),
        3.0f64.to_bits()
    );
    // ...and the locally-newer entry survived untouched.
    assert_eq!(
        dst.get(kept).unwrap().elapsed_secs.to_bits(),
        0.75f64.to_bits()
    );
    // Importing again finds nothing newer.
    assert_eq!(dst.import_if_newer(src.dir()).unwrap(), 0);

    let _ = std::fs::remove_dir_all(&src_dir);
    let _ = std::fs::remove_dir_all(&dst_dir);
}

/// The capacity bound evicts oldest-first and the eviction counter
/// mirrors it — including evictions triggered by an import.
#[test]
fn capacity_eviction_is_counted_across_put_and_import() {
    let src_dir = scratch("evict-src");
    let dst_dir = scratch("evict-dst");
    let src = ResultStore::open(&src_dir).unwrap();
    let dst = ResultStore::with_capacity(&dst_dir, 2).unwrap();

    let a = "graph=cycle:8 model=coloring:q=5 seed=10 job=run:rounds=5";
    let b = "graph=cycle:8 model=coloring:q=5 seed=11 job=run:rounds=5";
    let c = "graph=cycle:8 model=coloring:q=5 seed=12 job=run:rounds=5";
    let d = "graph=cycle:8 model=coloring:q=5 seed=13 job=run:rounds=5";

    dst.put(&synthetic(a, 1.0)).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    dst.put(&synthetic(b, 1.0)).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    dst.put(&synthetic(c, 1.0)).unwrap();
    assert_eq!(dst.len(), 2, "capacity 2 holds two entries");
    assert_eq!(dst.stats().evictions, 1, "the oldest was evicted");
    assert!(!dst.exists(a), "oldest-first: the first entry went");

    std::thread::sleep(std::time::Duration::from_millis(20));
    src.put(&synthetic(d, 1.0)).unwrap();
    assert_eq!(dst.import_if_newer(src.dir()).unwrap(), 1);
    assert_eq!(dst.len(), 2, "imports respect the capacity bound");
    assert_eq!(
        dst.stats().evictions,
        2,
        "the import-triggered eviction counts"
    );
    assert!(dst.exists(d), "the imported entry is the newest and stays");

    let _ = std::fs::remove_dir_all(&src_dir);
    let _ = std::fs::remove_dir_all(&dst_dir);
}
