//! The cluster layer's contract: a sweep coordinated over a worker
//! fleet is **bit-identical** to a single-server run — member by
//! member and in aggregate — and a `backend=cluster:k` member executed
//! as cross-process shards is bit-identical to the in-process sharded
//! chain and the sequential baseline, **including** the communication
//! accounting. Worker loss mid-sweep must not change a single bit:
//! lost members are requeued and replayed deterministically.

use lsl_core::cluster::Coordinator;
use lsl_core::net::Server;
use lsl_core::prelude::*;
use proptest::prelude::*;
use std::time::Duration;

/// Spins up `n` loopback workers and a coordinator over them.
fn fleet(n: usize) -> (Vec<Server>, Coordinator) {
    let servers: Vec<Server> = (0..n)
        .map(|_| Server::bind("127.0.0.1:0", 2).unwrap())
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let coord = Coordinator::connect(addrs)
        .unwrap()
        .ping_timeout(Duration::from_secs(10));
    (servers, coord)
}

/// Runs `line` through the coordinator and through a single in-process
/// service, and asserts the aggregates equal (spec string, member
/// results, summary — everything).
fn coordinate_and_compare(coord: &Coordinator, line: &str) {
    let run = coord.run_sweep(line).unwrap();
    let sweep: SweepSpec = line.parse().unwrap();
    let local = Service::new(2).submit_sweep(&sweep).wait().unwrap();
    assert_eq!(run.result, local, "cluster sweep diverged on {line}");
}

/// A seed sweep fanned over two workers equals the single-server
/// aggregate, member order preserved regardless of which worker ran
/// which member.
#[test]
fn coordinator_sweep_matches_single_server() {
    let (_servers, coord) = fleet(2);
    coordinate_and_compare(
        &coord,
        "graph=torus:4x4 model=coloring:q=9 job=run:rounds=30 seeds=0..6",
    );
    coordinate_and_compare(
        &coord,
        "graph=cycle:8 model=ising:beta=0.1 seed=3 job=run:rounds=25 sweep=beta:0.1..0.5:0.1",
    );
    // Measurement jobs and CSP scenarios ride the plain path.
    coordinate_and_compare(
        &coord,
        "graph=cycle:5 model=hardcore:lambda=1.5 job=distribution:rounds=30,replicas=400 \
         seeds=0..3",
    );
    coordinate_and_compare(&coord, "graph=cycle:7 model=mis seed=8 job=run:rounds=40");
}

/// The distributed tier: a `backend=cluster:k` member executed as
/// cross-process shards equals the direct in-process run *exactly* —
/// same fingerprint, same rounds, and the same `CommSummary` (the
/// coordinator replays the channel accounting bit-for-bit).
#[test]
fn cluster_backend_matches_in_process_run() {
    let (_servers, coord) = fleet(2);
    for (alg, sched) in [
        ("local-metropolis", ""),
        ("luby-glauber", ""),
        ("luby-glauber", " scheduler=singleton"),
        ("luby-glauber", " scheduler=chromatic"),
        ("glauber", ""),
        ("metropolis", ""),
    ] {
        for k in [1, 2, 3] {
            let line = format!(
                "graph=torus:5x5 model=coloring:q=10 algorithm={alg}{sched} \
                 backend=cluster:{k} seed=7 job=run:rounds=30"
            );
            let run = coord.run_sweep(&line).unwrap();
            let direct = line.parse::<JobSpec>().unwrap().run().unwrap();
            assert_eq!(run.result.results[0], direct, "diverged on {line}");
        }
    }
}

/// Partitioners, burn-in, and the bit-packed Ising exchange all cross
/// the processes unchanged.
#[test]
fn cluster_backend_matches_across_partitioners_and_burn_in() {
    let (_servers, coord) = fleet(3);
    for partitioner in ["contiguous", "bfs", "greedy"] {
        let line = format!(
            "graph=torus:5x5 model=ising:beta=0.4 backend=cluster:3 \
             partitioner={partitioner} burn-in=10 seed=5 job=run:rounds=30"
        );
        let run = coord.run_sweep(&line).unwrap();
        let direct = line.parse::<JobSpec>().unwrap().run().unwrap();
        assert_eq!(run.result.results[0], direct, "diverged on {line}");
    }
}

/// The trajectory is backend-independent: `cluster:k` over the wire,
/// `sharded:k` in-process, and plain sequential all land on the same
/// fingerprint (only the comm accounting differs across backends).
#[test]
fn cluster_trajectory_equals_sequential() {
    let (_servers, coord) = fleet(2);
    let cluster_line =
        "graph=torus:5x5 model=coloring:q=10 backend=cluster:4 seed=11 job=run:rounds=40";
    let run = coord.run_sweep(cluster_line).unwrap();
    let JobOutput::Run {
        fingerprint: fp_cluster,
        comm: Some(_),
        ..
    } = run.result.results[0].output
    else {
        panic!("expected a run output with comm stats");
    };
    for backend in ["sequential", "sharded:4"] {
        let line = format!(
            "graph=torus:5x5 model=coloring:q=10 backend={backend} seed=11 job=run:rounds=40"
        );
        let direct = line.parse::<JobSpec>().unwrap().run().unwrap();
        let JobOutput::Run { fingerprint, .. } = direct.output else {
            panic!("expected a run output");
        };
        assert_eq!(fp_cluster, fingerprint, "trajectory diverged vs {backend}");
    }
}

/// A sweep mixing distributed and plain members aggregates exactly
/// like the single-server run (the distributed members fall back to
/// the in-process sharded chain worker-side, which is bit-identical).
#[test]
fn mixed_sweep_matches_single_server() {
    let (_servers, coord) = fleet(2);
    coordinate_and_compare(
        &coord,
        "graph=torus:4x4 model=coloring:q=9 backend=cluster:2 job=run:rounds=30 seeds=0..4",
    );
}

/// Fault injection, plain tier: kill one of two workers mid-sweep;
/// the lost members are requeued onto the survivor and the aggregate
/// still equals the single-server answer bit-for-bit.
#[test]
fn sweep_survives_worker_loss() {
    let mut servers = Vec::new();
    for _ in 0..2 {
        servers.push(Server::bind("127.0.0.1:0", 2).unwrap());
    }
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let coord = Coordinator::connect(addrs)
        .unwrap()
        .ping_timeout(Duration::from_secs(10));
    let victim = servers.pop().unwrap();
    let killer = std::thread::spawn(move || {
        let mut victim = victim;
        std::thread::sleep(Duration::from_millis(80));
        victim.shutdown(Duration::ZERO);
    });
    let line = "graph=torus:6x6 model=coloring:q=10 job=run:rounds=150 seeds=0..8";
    let run = coord.run_sweep(line).unwrap();
    killer.join().unwrap();
    let sweep: SweepSpec = line.parse().unwrap();
    let local = Service::new(2).submit_sweep(&sweep).wait().unwrap();
    assert_eq!(run.result, local, "worker loss changed the aggregate");
}

/// Fault injection, distributed tier: kill one of two workers while
/// `backend=cluster:3` members run as cross-process shards; the
/// coordinator benches the dead worker, replays the member on the
/// survivor, and the answer is unchanged.
#[test]
fn distributed_member_survives_worker_loss() {
    let mut servers = Vec::new();
    for _ in 0..2 {
        servers.push(Server::bind("127.0.0.1:0", 2).unwrap());
    }
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let coord = Coordinator::connect(addrs)
        .unwrap()
        .ping_timeout(Duration::from_secs(10));
    let victim = servers.pop().unwrap();
    let killer = std::thread::spawn(move || {
        let mut victim = victim;
        std::thread::sleep(Duration::from_millis(60));
        victim.shutdown(Duration::ZERO);
    });
    let line =
        "graph=torus:6x6 model=coloring:q=10 backend=cluster:3 job=run:rounds=200 seeds=0..3";
    let run = coord.run_sweep(line).unwrap();
    killer.join().unwrap();
    let sweep: SweepSpec = line.parse().unwrap();
    let local = Service::new(2).submit_sweep(&sweep).wait().unwrap();
    assert_eq!(run.result, local, "worker loss changed the aggregate");
}

/// Typed fast failures: an empty fleet and an unreachable worker are
/// both reported before any work is attempted.
#[test]
fn connect_failures_are_typed() {
    let none: Vec<String> = Vec::new();
    assert!(matches!(
        Coordinator::connect(none),
        Err(lsl_core::cluster::ClusterError::NoWorkers)
    ));
    // A port nothing listens on: bind-then-drop reserves one.
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let err = match Coordinator::connect([addr]) {
        Err(e) => e,
        Ok(_) => panic!("connecting to a dead address should fail"),
    };
    match err {
        lsl_core::cluster::ClusterError::Connect(e) => {
            assert!(e.attempts >= 1);
        }
        other => panic!("expected a connect error, got {other}"),
    }
}

/// Deterministic member errors come back exactly as a single server
/// reports them — as `Spec` errors, not fleet faults.
#[test]
fn member_errors_match_single_server() {
    let (_servers, coord) = fleet(2);
    // `tv` needs exact enumeration; this state space is far too big.
    let line = "graph=torus:6x6 model=coloring:q=10 seed=1 job=tv:rounds=10,replicas=10";
    let cluster_err = match coord.run_sweep(line) {
        Err(lsl_core::cluster::ClusterError::Spec(e)) => e,
        other => panic!("expected a spec error, got {other:?}"),
    };
    let sweep: SweepSpec = line.parse().unwrap();
    let local_err = Service::new(2).submit_sweep(&sweep).wait().unwrap_err();
    assert_eq!(cluster_err.to_string(), local_err.to_string());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized spot-check: random workload × shard count × fleet
    /// size, coordinated and direct, must agree exactly — the
    /// distributed tier when the rule allows it, the plain tier
    /// otherwise.
    #[test]
    fn cluster_identity_randomized(
        gsize in 4usize..7,
        alg_ix in 0usize..4,
        k in 1usize..5,
        workers in 1usize..4,
        seed in 0u64..10_000,
        rounds in 10usize..50,
    ) {
        let algorithm = ["local-metropolis", "luby-glauber", "glauber", "metropolis"][alg_ix];
        let line = format!(
            "graph=torus:{gsize}x{gsize} model=coloring:q=11 algorithm={algorithm} \
             backend=cluster:{k} seed={seed} job=run:rounds={rounds}"
        );
        let direct = line.parse::<JobSpec>().unwrap().run().unwrap();
        let (_servers, coord) = fleet(workers);
        let run = coord.run_sweep(&line).unwrap();
        prop_assert_eq!(&run.result.results[0], &direct, "cluster diverged on {}", line);
    }
}
