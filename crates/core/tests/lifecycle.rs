//! Fault injection for the job lifecycle: bounded admission under
//! burst load, cooperative cancellation (in-process, over the wire,
//! and implied by a client disconnect), abandoned-handle slot
//! reclamation, and graceful server drain. The invariants under test:
//!
//! * admission is deterministic — a burst over the queue cap yields an
//!   exact accept/reject split, every rejection typed;
//! * a cancelled job terminates with [`JobEvent::Cancelled`] within
//!   one progress interval, on every backend;
//! * dropping the last handle of a *queued* job frees its queue slot
//!   immediately and the job never executes (the result store is the
//!   witness);
//! * a session survives malformed frames mid-job and dies cleanly
//!   (cancelling its jobs) when its client disconnects;
//! * a drained server stops accepting and joins every session.

use lsl_core::lifecycle::{Limits, RejectReason};
use lsl_core::net::{Client, Server};
use lsl_core::proto::ServerFrame;
use lsl_core::service::{JobEvent, Service};
use lsl_core::spec::{JobSpec, SpecError};
use lsl_core::store::ResultStore;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A job that runs effectively forever (a million coalescence trials)
/// but observes its progress sink at sub-millisecond intervals — the
/// ideal cancellation target: unbounded work, instant preemption.
const BLOCKER: &str =
    "graph=cycle:8 model=coloring:q=4 seed=9 job=coalescence:trials=1000000,max-rounds=2000";

/// A job that completes in well under a second.
const QUICK: &str = "graph=cycle:8 model=coloring:q=5 seed=1 job=run:rounds=10";

fn spec(s: &str) -> JobSpec {
    s.parse().expect("test specs are well-formed")
}

/// A per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lsl-lifecycle-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Reads server frames until `stop` returns true; panics on EOF.
fn read_until(reader: &mut BufReader<TcpStream>, mut stop: impl FnMut(&ServerFrame) -> bool) {
    let mut line = String::new();
    loop {
        line.clear();
        assert!(
            reader.read_line(&mut line).expect("read a frame") > 0,
            "server hung up mid-stream"
        );
        let frame: ServerFrame = line.trim_end().parse().expect("server speaks the protocol");
        if stop(&frame) {
            return;
        }
    }
}

/// A 64-job burst against `queue_cap=3` with the single worker pinned
/// by a blocker: exactly 3 admissions, exactly 61 typed rejections —
/// and the admitted jobs still run to completion once the blocker is
/// cancelled.
#[test]
fn burst_over_the_queue_cap_splits_deterministically() {
    let service = Service::with_limits(
        1,
        Limits {
            queue_cap: 3,
            ..Limits::default()
        },
    );
    let blocker = service.submit(spec(BLOCKER));
    let blocker_ctl = blocker.cancel_token();
    let mut blocker_events = blocker.events();
    // Once `Started` is seen the worker has dequeued the blocker and
    // given its queue slot back: all 3 slots are free, deterministically.
    for event in &mut blocker_events {
        if matches!(event, JobEvent::Started) {
            break;
        }
    }
    let handles: Vec<_> = (0..64)
        .map(|seed| {
            service.submit(spec(&format!(
                "graph=cycle:8 model=coloring:q=5 seed={seed} job=run:rounds=10"
            )))
        })
        .collect();
    assert_eq!(service.queued_jobs(), 3, "the cap bounds the queue");
    blocker_ctl.cancel();
    assert!(
        blocker_events.any(|e| matches!(e, JobEvent::Cancelled)),
        "the blocker must terminate as cancelled"
    );
    let (mut finished, mut rejected) = (0, 0);
    for handle in handles {
        match handle.wait() {
            Ok(_) => finished += 1,
            Err(SpecError::Rejected(RejectReason::QueueFull { cap })) => {
                assert_eq!(cap, 3);
                rejected += 1;
            }
            Err(other) => panic!("unexpected terminal: {other}"),
        }
    }
    assert_eq!((finished, rejected), (3, 61));
    assert_eq!(service.queued_jobs(), 0);
}

/// A spec whose round budget exceeds the service's cap is rejected
/// before it touches the queue; the same spec within budget runs.
#[test]
fn round_budget_rejects_before_queueing() {
    let service = Service::with_limits(
        1,
        Limits {
            max_rounds: 1000,
            ..Limits::default()
        },
    );
    let over = service.submit(spec(
        "graph=cycle:8 model=coloring:q=5 seed=1 job=run:rounds=2000",
    ));
    match over.wait() {
        Err(SpecError::Rejected(RejectReason::RoundBudget { budget, cap })) => {
            assert_eq!((budget, cap), (2000, 1000));
        }
        other => panic!("expected a round-budget rejection, got {other:?}"),
    }
    assert_eq!(service.queued_jobs(), 0, "rejection must not hold a slot");
    let within = service.submit(spec(
        "graph=cycle:8 model=coloring:q=5 seed=1 job=run:rounds=999",
    ));
    assert!(within.wait().is_ok());
}

/// Cancelling a running job lands within one progress interval on
/// every backend: after the cancel, at most a stray in-flight progress
/// event or two, then the `Cancelled` terminal — never a `Finished`.
#[test]
fn cancel_lands_within_one_progress_interval_on_every_backend() {
    for backend in ["", " backend=parallel:2", " backend=sharded:2"] {
        let job: JobSpec = spec(&format!(
            "graph=torus:8x8 model=coloring:q=16 seed=3{backend} job=run:rounds=80000"
        ));
        let service = Service::with_limits(1, Limits::default());
        let handle = service.submit(job);
        let token = handle.cancel_token();
        let mut cancelled_at: Option<Instant> = None;
        let mut progress_after_cancel = 0u32;
        let mut terminal = None;
        for event in handle.events() {
            match event {
                JobEvent::Progress { .. } => {
                    if cancelled_at.is_none() {
                        token.cancel();
                        cancelled_at = Some(Instant::now());
                    } else {
                        progress_after_cancel += 1;
                    }
                }
                event if event.is_terminal() => {
                    terminal = Some(event);
                    break;
                }
                _ => {}
            }
        }
        let cancelled_at = cancelled_at
            .unwrap_or_else(|| panic!("job finished before any progress tick ({backend:?})"));
        assert!(
            matches!(terminal, Some(JobEvent::Cancelled)),
            "{backend:?}: expected Cancelled, got {terminal:?}"
        );
        assert!(
            progress_after_cancel <= 2,
            "{backend:?}: {progress_after_cancel} progress events after cancel"
        );
        assert!(
            cancelled_at.elapsed() < Duration::from_secs(10),
            "{backend:?}: cancellation took {:?}",
            cancelled_at.elapsed()
        );
    }
}

/// The abandoned-handle contract: dropping the last handle of a
/// *queued* job frees its queue slot immediately and the job never
/// executes. The disk store is the witness — an executed job would
/// have written its result through.
#[test]
fn dropping_the_last_handle_of_a_queued_job_frees_the_slot_and_never_runs() {
    let dir = scratch("abandon");
    let service = Service::with_store(
        1,
        Limits {
            queue_cap: 1,
            ..Limits::default()
        },
        ResultStore::open(&dir).expect("open the scratch store"),
    );
    let blocker = service.submit(spec(BLOCKER));
    let blocker_ctl = blocker.cancel_token();
    let mut blocker_events = blocker.events();
    for event in &mut blocker_events {
        if matches!(event, JobEvent::Started) {
            break;
        }
    }
    let abandoned_spec = spec("graph=cycle:9 model=coloring:q=5 seed=7 job=run:rounds=20");
    let abandoned_key = abandoned_spec.to_string();
    let queued = service.submit(abandoned_spec);
    assert_eq!(service.queued_jobs(), 1, "the queued job holds the slot");
    // The single slot is taken: an extra submission bounces.
    let extra = service.submit(spec(
        "graph=cycle:9 model=coloring:q=5 seed=8 job=run:rounds=20",
    ));
    assert!(matches!(
        extra.wait(),
        Err(SpecError::Rejected(RejectReason::QueueFull { cap: 1 }))
    ));
    // Dropping the last handle abandons the queued job: the slot comes
    // back synchronously, before any worker touches the task.
    drop(queued);
    assert_eq!(service.queued_jobs(), 0, "abandonment must free the slot");
    let ran_spec = spec("graph=cycle:9 model=coloring:q=5 seed=9 job=run:rounds=20");
    let ran_key = ran_spec.to_string();
    let ran = service.submit(ran_spec);
    blocker_ctl.cancel();
    assert!(ran.wait().is_ok(), "the freed slot admits a new job");
    drop(service);
    let store = ResultStore::open(&dir).expect("reopen the store");
    assert!(store.exists(&ran_key), "the finished job wrote through");
    assert!(
        !store.exists(&abandoned_key),
        "an abandoned job must never execute"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A client that disconnects mid-stream gets its running job cancelled
/// and its session reclaimed: with a single worker, a fresh client's
/// job can only complete if the orphaned blocker was preempted.
#[test]
fn client_disconnect_cancels_its_jobs_and_reclaims_the_session() {
    let server = Server::bind_service("127.0.0.1:0", Service::with_limits(1, Limits::default()))
        .expect("bind");
    {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        writeln!(writer, "submit id=1 spec={BLOCKER}").unwrap();
        // A progress frame proves the blocker is *running* (not queued)
        // when the connection dies.
        read_until(&mut reader, |frame| {
            matches!(
                frame,
                ServerFrame::Event {
                    event: JobEvent::Progress { .. },
                    ..
                }
            )
        });
    } // Both halves of the socket drop: the client is gone.
    let mut client = Client::connect(server.local_addr()).expect("reconnect");
    client.submit(QUICK).unwrap();
    let outcomes = client.drain().expect("the worker was freed");
    assert!(outcomes[0].is_ok(), "{:?}", outcomes[0].members);
    assert_eq!(server.service().queued_jobs(), 0);
}

/// Malformed frames and cancellations mid-job: the session answers
/// garbage with a typed error while the job's events keep streaming,
/// honours `cancel id=N` with a terminal `cancelled` event, rejects a
/// cancel for an unknown id — and still serves the next job.
#[test]
fn malformed_frames_and_wire_cancel_mid_job_keep_the_session() {
    let server = Server::bind_service("127.0.0.1:0", Service::with_limits(1, Limits::default()))
        .expect("bind");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writeln!(writer, "submit id=1 spec={BLOCKER}").unwrap();
    read_until(&mut reader, |frame| {
        matches!(
            frame,
            ServerFrame::Event {
                id: 1,
                event: JobEvent::Progress { .. },
                ..
            }
        )
    });
    // Garbage mid-job: a typed session-level error, job keeps running.
    writeln!(writer, "!!! not a frame").unwrap();
    read_until(&mut reader, |frame| match frame {
        ServerFrame::Error { id: None, .. } => true,
        ServerFrame::Event { id: 1, .. } => false,
        other => panic!("unexpected frame: {other:?}"),
    });
    // Cancel over the wire: the job ends with a `cancelled` terminal.
    writeln!(writer, "cancel id=1").unwrap();
    read_until(&mut reader, |frame| match frame {
        ServerFrame::Event {
            id: 1,
            event: JobEvent::Cancelled,
            ..
        } => true,
        ServerFrame::Event { id: 1, .. } => false,
        other => panic!("unexpected frame: {other:?}"),
    });
    // Cancelling an id this session never submitted: typed, id-tagged.
    writeln!(writer, "cancel id=99").unwrap();
    read_until(&mut reader, |frame| match frame {
        ServerFrame::Error { id: Some(99), .. } => true,
        other => panic!("unexpected frame: {other:?}"),
    });
    // The same connection still serves jobs to completion.
    writeln!(writer, "submit id=2 spec={QUICK}").unwrap();
    read_until(&mut reader, |frame| {
        matches!(
            frame,
            ServerFrame::Event {
                id: 2,
                event: JobEvent::Finished(_),
                ..
            }
        )
    });
}

/// Session-level admission over the wire: with `per_session_inflight`
/// = 1 a second unresolved line is rejected as `session-busy`, and
/// [`Client::cancel`] resolves the first as [`SpecError::Cancelled`].
#[test]
fn session_inflight_cap_and_client_cancel_over_the_wire() {
    let service = Service::with_limits(
        1,
        Limits {
            per_session_inflight: 1,
            ..Limits::default()
        },
    );
    let server = Server::bind_service("127.0.0.1:0", service).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let blocker_id = client.submit(BLOCKER).unwrap();
    let busy_id = client.submit(QUICK).unwrap();
    client.cancel(blocker_id).unwrap();
    let outcomes = client.drain().expect("drain");
    assert_eq!(outcomes[0].id, blocker_id);
    assert!(
        matches!(outcomes[0].members[0], Err(SpecError::Cancelled)),
        "{:?}",
        outcomes[0].members
    );
    assert_eq!(outcomes[1].id, busy_id);
    assert!(
        matches!(
            outcomes[1].members[0],
            Err(SpecError::Rejected(RejectReason::SessionBusy { cap: 1 }))
        ),
        "{:?}",
        outcomes[1].members
    );
}

/// A service-level rejection (round budget) crosses the wire as the
/// same typed reason the in-process caller would see.
#[test]
fn round_budget_rejection_rides_the_wire_typed() {
    let service = Service::with_limits(
        1,
        Limits {
            max_rounds: 50,
            ..Limits::default()
        },
    );
    let server = Server::bind_service("127.0.0.1:0", service).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .submit("graph=cycle:8 model=coloring:q=5 seed=1 job=run:rounds=100")
        .unwrap();
    let outcomes = client.drain().expect("drain");
    assert!(
        matches!(
            outcomes[0].members[0],
            Err(SpecError::Rejected(RejectReason::RoundBudget {
                budget: 100,
                cap: 50
            }))
        ),
        "{:?}",
        outcomes[0].members
    );
}

/// The `shutdown` admin frame latches the request; an explicit drain
/// then leaves nothing listening on the port.
#[test]
fn shutdown_frame_drains_and_the_server_stops_listening() {
    let mut server =
        Server::bind_service("127.0.0.1:0", Service::with_limits(1, Limits::default()))
            .expect("bind");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    client.submit(QUICK).unwrap();
    let outcomes = client.drain().expect("drain before shutdown");
    assert!(outcomes[0].is_ok());
    client.request_shutdown().unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !server.shutdown_requested() {
        assert!(
            Instant::now() < deadline,
            "the shutdown frame never latched"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown(Duration::from_millis(200));
    assert!(
        TcpStream::connect(addr).is_err(),
        "a drained server must not accept connections"
    );
}
