//! The spec grammar's contract: `parse → print → parse` is the
//! identity, across the full scenario registry — every graph family ×
//! every model × every algorithm/scheduler/backend/partitioner — and
//! the `FromStr`/`Display` pairs of the four workload enums round-trip
//! on their own.

use lsl_core::engine::{Backend, HotPath};
use lsl_core::sampler::{Algorithm, Sched};
use lsl_core::spec::{JobKind, JobSpec};
use lsl_graph::partition::Partitioner;
use proptest::prelude::*;

mod common;
use common::{
    arb_algorithm, arb_backend, arb_graph, arb_hotpath, arb_partitioner, arb_sched, arb_spec,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline contract: printing a spec and parsing it back
    /// yields the identical spec, and the printed form is a fixed
    /// point of print ∘ parse.
    #[test]
    fn spec_print_parse_roundtrips(spec in arb_spec()) {
        let printed = spec.to_string();
        let reparsed: JobSpec = printed.parse().expect("canonical form must parse");
        prop_assert_eq!(&reparsed, &spec, "parse(print(spec)) != spec for {}", printed);
        prop_assert_eq!(reparsed.to_string(), printed);
    }

    #[test]
    fn algorithm_roundtrips(a in arb_algorithm()) {
        prop_assert_eq!(a.to_string().parse::<Algorithm>().unwrap(), a);
    }

    #[test]
    fn sched_roundtrips(s in arb_sched()) {
        prop_assert_eq!(s.to_string().parse::<Sched>().unwrap(), s);
    }

    #[test]
    fn backend_roundtrips(b in arb_backend()) {
        prop_assert_eq!(b.to_string().parse::<Backend>().unwrap(), b);
    }

    #[test]
    fn partitioner_roundtrips(p in arb_partitioner()) {
        prop_assert_eq!(p.to_string().parse::<Partitioner>().unwrap(), p);
    }

    #[test]
    fn hotpath_roundtrips(h in arb_hotpath()) {
        prop_assert_eq!(h.to_string().parse::<HotPath>().unwrap(), h);
    }

    /// Deterministic graph builds: the same spec builds the same graph
    /// (vertex + edge counts as a cheap witness), so service cache hits
    /// can never change a workload.
    #[test]
    fn graph_builds_are_deterministic(g in arb_graph(), seed in 0u64..1_000) {
        let a = g.build(seed);
        let b = g.build(seed);
        prop_assert_eq!(a.num_vertices(), b.num_vertices());
        prop_assert_eq!(a.num_edges(), b.num_edges());
        let edges_a: Vec<_> = a.edges().collect();
        let edges_b: Vec<_> = b.edges().collect();
        prop_assert_eq!(edges_a, edges_b);
    }
}

/// Bare names parse where the grammar allows them (auto counts,
/// default run rounds).
#[test]
fn shorthand_forms_parse() {
    let spec: JobSpec = "graph=cycle:9 model=mis backend=parallel job=run"
        .parse()
        .unwrap();
    assert_eq!(spec.backend, Some(Backend::Parallel { threads: 0 }));
    assert_eq!(spec.job, Some(JobKind::Run { rounds: 100 }));
}
