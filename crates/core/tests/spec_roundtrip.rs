//! The spec grammar's contract: `parse → print → parse` is the
//! identity, across the full scenario registry — every graph family ×
//! every model × every algorithm/scheduler/backend/partitioner — and
//! the `FromStr`/`Display` pairs of the four workload enums round-trip
//! on their own.

use lsl_core::engine::{Backend, HotPath, Packing};
use lsl_core::sampler::{Algorithm, Sched};
use lsl_core::spec::{GraphSpec, JobKind, JobSpec, ModelSpec};
use lsl_graph::partition::Partitioner;
use proptest::prelude::*;

// ----- strategies over the whole registry ----------------------------

fn arb_graph() -> impl Strategy<Value = GraphSpec> {
    prop_oneof![
        (1usize..40).prop_map(|n| GraphSpec::Path { n }),
        (3usize..40).prop_map(|n| GraphSpec::Cycle { n }),
        (1usize..9).prop_map(|n| GraphSpec::Complete { n }),
        (1usize..6, 1usize..6).prop_map(|(a, b)| GraphSpec::CompleteBipartite { a, b }),
        (1usize..12).prop_map(|n| GraphSpec::Star { n }),
        (2usize..7, 2usize..7).prop_map(|(rows, cols)| GraphSpec::Grid { rows, cols }),
        (3usize..7, 3usize..7).prop_map(|(rows, cols)| GraphSpec::Torus { rows, cols }),
        (1u32..5).prop_map(|dim| GraphSpec::Hypercube { dim }),
        (1usize..10).prop_map(|pages| GraphSpec::Book { pages }),
        (1usize..6, 1usize..4).prop_map(|(spine, legs)| GraphSpec::Caterpillar { spine, legs }),
        (4usize..24, 0u32..=10).prop_map(|(n, tenths)| GraphSpec::Gnp {
            n,
            p: f64::from(tenths) / 10.0,
        }),
        // d < n and n*d even, by construction.
        (2usize..5, 3usize..8).prop_map(|(half_d, extra)| {
            let d = 2 * half_d - 2;
            GraphSpec::RandomRegular { n: d + extra, d }
        }),
        (1usize..20).prop_map(|n| GraphSpec::RandomTree { n }),
    ]
}

fn arb_model() -> impl Strategy<Value = ModelSpec> {
    prop_oneof![
        (2usize..12).prop_map(|q| ModelSpec::Coloring { q }),
        (2usize..9, 1usize..3).prop_map(|(q, size)| ModelSpec::ListColoring {
            q,
            size: size.min(q)
        }),
        (1u32..=30).prop_map(|tenths| ModelSpec::Hardcore {
            lambda: f64::from(tenths) / 10.0,
        }),
        Just(ModelSpec::IndependentSet),
        Just(ModelSpec::VertexCover),
        (1u32..=30).prop_map(|tenths| ModelSpec::Ising {
            beta: f64::from(tenths) / 10.0,
        }),
        (2usize..5, 1u32..=30).prop_map(|(q, tenths)| ModelSpec::Potts {
            q,
            beta: f64::from(tenths) / 10.0,
        }),
        Just(ModelSpec::DominatingSet),
        Just(ModelSpec::Mis),
    ]
}

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::LocalMetropolis),
        Just(Algorithm::LocalMetropolisNoRule3),
        Just(Algorithm::LubyGlauber),
        Just(Algorithm::Glauber),
        Just(Algorithm::Metropolis),
    ]
}

fn arb_sched() -> impl Strategy<Value = Sched> {
    prop_oneof![
        Just(Sched::Luby),
        Just(Sched::Singleton),
        (1u32..=10).prop_map(|tenths| Sched::Bernoulli(f64::from(tenths) / 10.0)),
        Just(Sched::Chromatic),
    ]
}

fn arb_backend() -> impl Strategy<Value = Backend> {
    prop_oneof![
        Just(Backend::Sequential),
        (0usize..8).prop_map(|threads| Backend::Parallel { threads }),
        (0usize..8).prop_map(|shards| Backend::Sharded { shards }),
    ]
}

fn arb_partitioner() -> impl Strategy<Value = Partitioner> {
    prop_oneof![
        Just(Partitioner::Contiguous),
        Just(Partitioner::Bfs),
        Just(Partitioner::GreedyEdgeCut),
    ]
}

fn arb_hotpath() -> impl Strategy<Value = HotPath> {
    let packing = prop_oneof![
        Just(None),
        Just(Some(Packing::Wide)),
        Just(Some(Packing::Byte)),
        Just(Some(Packing::Bit)),
    ];
    prop_oneof![
        Just(HotPath::Scalar),
        (packing, any::<bool>())
            .prop_map(|(packing, block_rng)| HotPath::Lanes { packing, block_rng }),
    ]
}

fn arb_job() -> impl Strategy<Value = JobKind> {
    prop_oneof![
        (1usize..500).prop_map(|rounds| JobKind::Run { rounds }),
        (1usize..100, 1usize..200)
            .prop_map(|(rounds, replicas)| JobKind::Distribution { rounds, replicas }),
        (1usize..100, 1usize..200).prop_map(|(rounds, replicas)| JobKind::Tv { rounds, replicas }),
        (1usize..5, 100usize..10_000)
            .prop_map(|(trials, max_rounds)| JobKind::Coalescence { trials, max_rounds }),
    ]
}

prop_compose! {
    fn arb_spec()(
        graph in arb_graph(),
        model in arb_model(),
        algorithm in proptest::option::of(arb_algorithm()),
        scheduler in proptest::option::of(arb_sched()),
        backend in proptest::option::of(arb_backend()),
        partitioner in proptest::option::of(arb_partitioner()),
        hotpath in proptest::option::of(arb_hotpath()),
        seed in proptest::option::of(0u64..1_000_000),
        graph_seed in proptest::option::of(0u64..1_000_000),
        burn_in in proptest::option::of(0usize..100),
        job in proptest::option::of(arb_job()),
    ) -> JobSpec {
        JobSpec {
            graph,
            model,
            algorithm,
            scheduler,
            backend,
            partitioner,
            hotpath,
            seed,
            graph_seed,
            burn_in,
            job,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline contract: printing a spec and parsing it back
    /// yields the identical spec, and the printed form is a fixed
    /// point of print ∘ parse.
    #[test]
    fn spec_print_parse_roundtrips(spec in arb_spec()) {
        let printed = spec.to_string();
        let reparsed: JobSpec = printed.parse().expect("canonical form must parse");
        prop_assert_eq!(&reparsed, &spec, "parse(print(spec)) != spec for {}", printed);
        prop_assert_eq!(reparsed.to_string(), printed);
    }

    #[test]
    fn algorithm_roundtrips(a in arb_algorithm()) {
        prop_assert_eq!(a.to_string().parse::<Algorithm>().unwrap(), a);
    }

    #[test]
    fn sched_roundtrips(s in arb_sched()) {
        prop_assert_eq!(s.to_string().parse::<Sched>().unwrap(), s);
    }

    #[test]
    fn backend_roundtrips(b in arb_backend()) {
        prop_assert_eq!(b.to_string().parse::<Backend>().unwrap(), b);
    }

    #[test]
    fn partitioner_roundtrips(p in arb_partitioner()) {
        prop_assert_eq!(p.to_string().parse::<Partitioner>().unwrap(), p);
    }

    #[test]
    fn hotpath_roundtrips(h in arb_hotpath()) {
        prop_assert_eq!(h.to_string().parse::<HotPath>().unwrap(), h);
    }

    /// Deterministic graph builds: the same spec builds the same graph
    /// (vertex + edge counts as a cheap witness), so service cache hits
    /// can never change a workload.
    #[test]
    fn graph_builds_are_deterministic(g in arb_graph(), seed in 0u64..1_000) {
        let a = g.build(seed);
        let b = g.build(seed);
        prop_assert_eq!(a.num_vertices(), b.num_vertices());
        prop_assert_eq!(a.num_edges(), b.num_edges());
        let edges_a: Vec<_> = a.edges().collect();
        let edges_b: Vec<_> = b.edges().collect();
        prop_assert_eq!(edges_a, edges_b);
    }
}

/// Bare names parse where the grammar allows them (auto counts,
/// default run rounds).
#[test]
fn shorthand_forms_parse() {
    let spec: JobSpec = "graph=cycle:9 model=mis backend=parallel job=run"
        .parse()
        .unwrap();
    assert_eq!(spec.backend, Some(Backend::Parallel { threads: 0 }));
    assert_eq!(spec.job, Some(JobKind::Run { rounds: 100 }));
}
