//! The network front end's contract: an answer served over a live
//! loopback TCP session is **bit-identical** to the in-process
//! [`Service`] answer (itself bit-identical to a direct
//! [`JobSpec::run`]) — across algorithms × graph families ×
//! schedulers/backends/partitioners × job kinds, under concurrent
//! multi-client sessions, and through sweep expansion.

use lsl_core::net::{Client, Server};
use lsl_core::prelude::*;
use proptest::prelude::*;

/// Runs `line` three ways — direct, in-process service, loopback TCP —
/// and asserts all answers equal.
fn run_three_ways(server: &Server, line: &str) {
    let spec: JobSpec = line.parse().unwrap();
    let direct = spec.run().unwrap();
    let service = Service::new(2);
    let served = service.submit(spec).wait().unwrap();
    assert_eq!(direct, served, "in-process service diverged on {line}");
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.submit(line).unwrap();
    let outcomes = client.drain().unwrap();
    let remote = outcomes[0].members[0]
        .as_ref()
        .unwrap_or_else(|e| panic!("remote job failed on {line}: {e}"));
    assert_eq!(&direct, remote, "remote answer diverged on {line}");
}

/// Every algorithm on torus/cycle/G(n,p), over one live server.
#[test]
fn remote_matches_direct_for_every_algorithm_and_family() {
    let server = Server::bind("127.0.0.1:0", 2).unwrap();
    for graph in ["torus:4x4", "cycle:11", "gnp:n=12,p=0.3"] {
        for algorithm in [
            "local-metropolis",
            "local-metropolis-no-rule3",
            "luby-glauber",
            "glauber",
            "metropolis",
        ] {
            run_three_ways(
                &server,
                &format!(
                    "graph={graph} model=coloring:q=9 algorithm={algorithm} \
                     seed=7 job=run:rounds=40"
                ),
            );
        }
    }
}

/// Schedulers, backends, partitioners, measurement jobs, and CSP
/// scenarios cross the wire unchanged too — including the float-heavy
/// tv/coalescence outputs (shortest-round-trip encoding).
#[test]
fn remote_matches_direct_across_schedulers_backends_and_jobs() {
    let server = Server::bind("127.0.0.1:0", 2).unwrap();
    for sched in ["luby", "singleton", "bernoulli:0.3", "chromatic"] {
        run_three_ways(
            &server,
            &format!(
                "graph=torus:4x4 model=coloring:q=9 algorithm=luby-glauber \
                 scheduler={sched} seed=3 job=run:rounds=30"
            ),
        );
    }
    for backend in ["sequential", "parallel:3", "sharded:3"] {
        run_three_ways(
            &server,
            &format!(
                "graph=torus:5x5 model=ising:beta=0.4 backend={backend} \
                 seed=5 job=run:rounds=30"
            ),
        );
    }
    for partitioner in ["contiguous", "bfs", "greedy"] {
        run_three_ways(
            &server,
            &format!(
                "graph=torus:5x5 model=coloring:q=10 backend=sharded:4 \
                 partitioner={partitioner} seed=5 job=run:rounds=30"
            ),
        );
    }
    for line in [
        "graph=cycle:4 model=coloring:q=3 algorithm=luby-glauber seed=9 \
         job=tv:rounds=30,replicas=800",
        "graph=cycle:6 model=coloring:q=9 seed=2 job=coalescence:trials=3,max-rounds=50000",
        "graph=cycle:5 model=hardcore:lambda=1.5 seed=4 job=distribution:rounds=30,replicas=500",
        "graph=path:5 model=dominating-set seed=6 job=run:rounds=50",
        "graph=cycle:7 model=mis seed=8 job=run:rounds=40",
    ] {
        run_three_ways(&server, line);
    }
}

/// The acceptance criterion's concurrency leg: several clients, each
/// with several in-flight jobs on one session, all answered exactly
/// as direct runs — no cross-talk between interleaved event streams.
#[test]
fn concurrent_multi_client_batches_are_bit_identical() {
    let server = Server::bind("127.0.0.1:0", 4).unwrap();
    let addr = server.local_addr();
    let clients: Vec<_> = (0..3)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let lines: Vec<String> = (0..6)
                    .map(|i| {
                        format!(
                            "graph=torus:4x4 model=coloring:q=9 seed={} job=run:rounds={}",
                            c * 100 + i,
                            20 + (i % 3) * 10
                        )
                    })
                    .collect();
                for line in &lines {
                    client.submit(line).unwrap();
                }
                let outcomes = client.drain().unwrap();
                (lines, outcomes)
            })
        })
        .collect();
    for handle in clients {
        let (lines, outcomes) = handle.join().unwrap();
        assert_eq!(lines.len(), outcomes.len());
        for (line, outcome) in lines.iter().zip(outcomes) {
            let direct = line.parse::<JobSpec>().unwrap().run().unwrap();
            assert_eq!(
                outcome.members[0].as_ref().unwrap(),
                &direct,
                "client batch diverged on {line}"
            );
        }
    }
}

/// The sweep acceptance criterion: a `seeds=0..N` sweep served over
/// the wire equals N independent single-seed runs, member by member,
/// and the aggregate matches a local aggregation.
#[test]
fn remote_seed_sweep_equals_independent_runs() {
    let server = Server::bind("127.0.0.1:0", 3).unwrap();
    let base = "graph=torus:4x4 model=coloring:q=9 job=run:rounds=30";
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.submit(&format!("{base} seeds=0..6")).unwrap();
    let outcomes = client.drain().unwrap();
    assert_eq!(outcomes[0].members.len(), 6);
    for (seed, member) in outcomes[0].members.iter().enumerate() {
        let solo = format!("graph=torus:4x4 model=coloring:q=9 seed={seed} job=run:rounds=30")
            .parse::<JobSpec>()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(member.as_ref().unwrap(), &solo, "seed {seed} diverged");
    }
    // And the remote aggregate equals the in-process sweep aggregate.
    let sweep: SweepSpec = format!("{base} seeds=0..6").parse().unwrap();
    let local = Service::new(2).submit_sweep(&sweep).wait().unwrap();
    let remote = outcomes.into_iter().next().unwrap();
    assert_eq!(remote.into_sweep_result().unwrap(), local);
}

/// A parameter sweep crosses the wire bit-identically as well.
#[test]
fn remote_parameter_sweep_matches_in_process() {
    let server = Server::bind("127.0.0.1:0", 2).unwrap();
    let line = "graph=cycle:8 model=ising:beta=0.1 seed=3 job=run:rounds=25 \
                sweep=beta:0.1..0.5:0.1";
    let sweep: SweepSpec = line.parse().unwrap();
    assert_eq!(sweep.job_count(), 5);
    let local = Service::new(2).submit_sweep(&sweep).wait().unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.submit(line).unwrap();
    let remote = client
        .drain()
        .unwrap()
        .into_iter()
        .next()
        .unwrap()
        .into_sweep_result()
        .unwrap();
    // Canonical sweep line differs from the raw one only in key order;
    // compare members and summary.
    assert_eq!(remote.results, local.results);
    assert_eq!(remote.summary, local.summary);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized spot-check over the workload space, over the wire:
    /// random family × algorithm × backend × seed, remote and direct,
    /// must agree exactly.
    #[test]
    fn remote_identity_randomized(
        family in 0u8..3,
        gsize in 4usize..8,
        alg_ix in 0usize..5,
        backend_ix in 0usize..3,
        seed in 0u64..10_000,
        rounds in 10usize..60,
    ) {
        let graph = match family {
            0 => format!("torus:{gsize}x{gsize}"),
            1 => format!("cycle:{}", gsize + 3),
            _ => format!("gnp:n={},p=0.3", gsize + 6),
        };
        let algorithm = ["local-metropolis", "local-metropolis-no-rule3",
                         "luby-glauber", "glauber", "metropolis"][alg_ix];
        let backend = ["sequential", "parallel:2", "sharded:2"][backend_ix];
        let line = format!(
            "graph={graph} model=coloring:q=11 algorithm={algorithm} \
             backend={backend} seed={seed} job=run:rounds={rounds}"
        );
        let direct = line.parse::<JobSpec>().unwrap().run().unwrap();
        let server = Server::bind("127.0.0.1:0", 2).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.submit(&line).unwrap();
        let outcomes = client.drain().unwrap();
        prop_assert_eq!(
            outcomes[0].members[0].as_ref().unwrap(),
            &direct,
            "remote diverged on {}", line
        );
    }
}
