//! The binary codec's contract: a session negotiated to
//! [`Codec::Binary`] answers **byte-identically** to the same line on
//! a text session — member results, state deliveries, and the printed
//! wire forms all agree — and `decode ∘ encode = id` holds over the
//! whole frame vocabulary, including the rejection and cancellation
//! paths that normal runs rarely exercise.

mod common;

use lsl_core::codec::{self, Codec, StateBlob};
use lsl_core::lifecycle::RejectReason;
use lsl_core::net::{Client, Server};
use lsl_core::proto::{ClientFrame, ServerFrame};
use lsl_core::sampler::{Algorithm, BuildError};
use lsl_core::service::{JobEvent, Service};
use lsl_core::spec::{CommSummary, JobOutput, JobResult, SpecError};
use proptest::prelude::*;

/// Submits `line` on a text session and a binary session against the
/// same server and asserts the outcomes agree exactly (results, state
/// deliveries, and printed wire forms; progress counts are
/// time-throttled and deliberately not compared).
fn assert_codecs_agree(server: &Server, line: &str) {
    let mut text = Client::connect_with(server.local_addr(), Codec::Text).unwrap();
    let mut binary = Client::connect_with(server.local_addr(), Codec::Binary).unwrap();
    text.submit(line).unwrap();
    binary.submit(line).unwrap();
    let t = text.drain().unwrap().into_iter().next().unwrap();
    let b = binary.drain().unwrap().into_iter().next().unwrap();
    assert_eq!(t.members, b.members, "results diverged on {line}");
    assert_eq!(t.states, b.states, "state deliveries diverged on {line}");
    for (tm, bm) in t.members.iter().zip(&b.members) {
        if let (Ok(tr), Ok(br)) = (tm, bm) {
            // The full result line embeds wall-clock elapsed time;
            // compare the deterministic parts' printed forms.
            assert_eq!(tr.spec, br.spec, "specs diverged on {line}");
            assert_eq!(
                tr.output.to_string(),
                br.output.to_string(),
                "output wire forms diverged on {line}"
            );
        }
    }
}

/// The state-shipping jobs, deterministically: sample (single and
/// replicated), stream, and a CSP model, across both codecs.
#[test]
fn state_jobs_agree_across_codecs() {
    let server = Server::bind("127.0.0.1:0", 2).unwrap();
    for line in [
        "graph=torus:5x5 model=coloring:q=9 seed=4 job=sample:rounds=40,count=1",
        "graph=torus:4x4 model=coloring:q=9 seed=5 job=sample:rounds=30,count=4",
        "graph=torus:5x5 model=ising:beta=0.3 seed=6 job=stream:rounds=50,every=10",
        "graph=cycle:9 model=coloring:q=5 seed=7 job=stream:rounds=30,every=7",
        "graph=cycle:8 model=mis seed=8 job=sample:rounds=25,count=1",
        "graph=torus:4x4 model=coloring:q=9 seed=9 burn-in=10 job=sample:rounds=20,count=2",
        // Degenerate budgets are part of the grammar.
        "graph=cycle:5 model=coloring:q=4 seed=1 job=stream:rounds=0,every=3",
        "graph=cycle:5 model=coloring:q=4 seed=1 job=sample:rounds=0,count=2",
    ] {
        assert_codecs_agree(&server, line);
    }
}

/// A binary session's streamed state sequence is exactly the sequence
/// an in-process [`Service`] run emits — same rounds, same decoded
/// configurations, same final result.
#[test]
fn streamed_states_match_in_process_run() {
    let line = "graph=torus:6x6 model=coloring:q=8 seed=11 job=stream:rounds=40,every=10";
    let server = Server::bind("127.0.0.1:0", 2).unwrap();
    let mut client = Client::connect_with(server.local_addr(), Codec::Binary).unwrap();
    client.submit(line).unwrap();
    let outcome = client.drain().unwrap().into_iter().next().unwrap();

    let mut local_states: Vec<(u64, StateBlob)> = Vec::new();
    let mut local_result = None;
    let handle = Service::new(2).submit_str(line).unwrap();
    for event in handle.events() {
        match event {
            JobEvent::State { round, blob } => local_states.push((round, blob)),
            JobEvent::Finished(result) => local_result = Some(result),
            _ => {}
        }
    }

    assert_eq!(outcome.states[0], local_states);
    assert_eq!(local_states.len(), 4, "rounds=40 every=10 ships 4 states");
    assert_eq!(outcome.members[0].as_ref().unwrap(), &local_result.unwrap());
    // The blobs really are full configurations, not fingerprints.
    let (round, last) = local_states.last().unwrap();
    assert_eq!(*round, 40);
    assert_eq!(last.unpack().len(), 36);
}

/// A malformed binary frame — garbage payload, or a length prefix
/// past the 16 MiB cap — answers a typed `error` frame and the
/// session keeps working, mirroring the text protocol's
/// malformed-line contract (`tests/lifecycle.rs`).
#[test]
fn malformed_binary_frames_get_typed_errors_and_the_session_survives() {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let server = Server::bind("127.0.0.1:0", 1).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    // Negotiate in text; the ack comes back as one text line.
    writeln!(stream, "hello codec=binary").unwrap();
    let mut ack = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        stream.read_exact(&mut byte).unwrap();
        if byte[0] == b'\n' {
            break;
        }
        ack.push(byte[0]);
    }
    assert_eq!(String::from_utf8(ack).unwrap().trim(), "hello codec=binary");

    // Everything after the ack is length-prefixed binary.
    let mut fb = codec::FrameBuffer::new();
    let next = |stream: &mut TcpStream, fb: &mut codec::FrameBuffer| -> ServerFrame {
        loop {
            if let Some(payload) = fb.next_frame().unwrap() {
                return codec::decode_server(&payload).unwrap();
            }
            let mut tmp = [0u8; 4096];
            let n = stream.read(&mut tmp).unwrap();
            assert!(n > 0, "server closed the session");
            fb.extend(&tmp[..n]);
        }
    };

    // A complete frame of garbage: typed error, session alive.
    stream.write_all(&7u32.to_le_bytes()).unwrap();
    stream.write_all(&[0xFF; 7]).unwrap();
    match next(&mut stream, &mut fb) {
        ServerFrame::Error { id: None, message } => {
            assert!(message.contains("malformed"), "got {message:?}")
        }
        other => panic!("expected a session-level error, got {other:?}"),
    }

    // An over-cap length prefix: typed error, and the stream resyncs
    // at the next byte — the valid submit right behind it runs.
    let oversize = u32::try_from(codec::MAX_FRAME + 1).unwrap();
    stream.write_all(&oversize.to_le_bytes()).unwrap();
    let line = "graph=cycle:6 model=coloring:q=4 seed=2 job=run:rounds=5";
    let submit = ClientFrame::Submit {
        id: 0,
        spec: line.into(),
    };
    codec::write_frame(&mut stream, &codec::encode_client(&submit)).unwrap();
    match next(&mut stream, &mut fb) {
        ServerFrame::Error { id: None, message } => {
            assert!(message.contains("exceeds cap"), "got {message:?}")
        }
        other => panic!("expected an oversize error, got {other:?}"),
    }
    let result = loop {
        if let ServerFrame::Event {
            id: 0,
            event: JobEvent::Finished(result),
            ..
        } = next(&mut stream, &mut fb)
        {
            break result;
        }
    };
    let direct = line
        .parse::<lsl_core::spec::JobSpec>()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(result, direct, "post-error session must still answer");
}

/// Adversarial strings for the escaped payload paths: control bytes,
/// the protocol separators, non-ASCII.
fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..0x250, 0..12)
        .prop_map(|cs| cs.into_iter().filter_map(char::from_u32).collect())
}

fn arb_blob() -> impl Strategy<Value = StateBlob> {
    (
        prop_oneof![Just(2usize), Just(5), Just(256), Just(1000)],
        1usize..400,
    )
        .prop_flat_map(|(q, n)| {
            proptest::collection::vec(0u32..u32::try_from(q).unwrap(), n)
                .prop_map(move |spins| StateBlob::pack(&spins, q))
        })
}

fn arb_output() -> impl Strategy<Value = JobOutput> {
    prop_oneof![
        (any::<u64>(), any::<usize>(), any::<bool>(), any::<u64>()).prop_map(
            |(rounds, n, feasible, fingerprint)| JobOutput::Run {
                rounds,
                n,
                feasible,
                fingerprint,
                comm: None,
            }
        ),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(rounds_seen, total_messages, total_bytes, total_changed)| JobOutput::Run {
                rounds: 1,
                n: 2,
                feasible: false,
                fingerprint: 3,
                comm: Some(CommSummary {
                    rounds_seen,
                    total_messages,
                    total_bytes,
                    total_changed,
                }),
            }
        ),
        (any::<usize>(), any::<usize>(), any::<f64>()).prop_map(|(rounds, replicas, tv)| {
            JobOutput::Tv {
                rounds,
                replicas,
                tv,
            }
        }),
        (any::<u64>(), proptest::collection::vec(arb_blob(), 0..3))
            .prop_map(|(rounds, states)| JobOutput::Sample { rounds, states }),
        (
            any::<u64>(),
            1usize..100,
            any::<usize>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(
                |(rounds, every, n, states, fingerprint)| JobOutput::Stream {
                    rounds,
                    every,
                    n,
                    states,
                    fingerprint,
                }
            ),
    ]
}

fn arb_spec_error() -> impl Strategy<Value = SpecError> {
    prop_oneof![
        arb_string().prop_map(|token| SpecError::NotKeyValue { token }),
        arb_string().prop_map(|key| SpecError::UnknownKey { key }),
        Just(SpecError::MissingKey { key: "graph" }),
        (arb_string(), arb_string())
            .prop_map(|(key, message)| SpecError::BadValue { key, message }),
        Just(SpecError::Combo(BuildError::SchedulerNotApplicable {
            algorithm: Algorithm::Glauber,
        })),
        arb_string().prop_map(|message| SpecError::JobPanicked { message }),
        Just(SpecError::Cancelled),
        Just(SpecError::ServiceStopped),
    ]
}

fn arb_reject() -> impl Strategy<Value = RejectReason> {
    prop_oneof![
        any::<usize>().prop_map(|cap| RejectReason::QueueFull { cap }),
        any::<usize>().prop_map(|cap| RejectReason::SessionBusy { cap }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(budget, cap)| RejectReason::RoundBudget { budget, cap }),
        Just(RejectReason::Draining),
    ]
}

fn arb_event() -> impl Strategy<Value = JobEvent> {
    prop_oneof![
        Just(JobEvent::Accepted),
        Just(JobEvent::Started),
        (any::<u64>(), any::<u64>()).prop_map(|(round, of)| JobEvent::Progress { round, of }),
        (any::<u64>(), arb_blob()).prop_map(|(round, blob)| JobEvent::State { round, blob }),
        (arb_string(), arb_output(), any::<f64>()).prop_map(|(spec, output, elapsed_secs)| {
            JobEvent::Finished(JobResult {
                spec,
                output,
                elapsed_secs,
            })
        }),
        arb_spec_error().prop_map(JobEvent::Failed),
        arb_reject().prop_map(|reason| JobEvent::Rejected { reason }),
        Just(JobEvent::Cancelled),
    ]
}

fn arb_codec() -> impl Strategy<Value = Codec> {
    prop_oneof![Just(Codec::Text), Just(Codec::Binary)]
}

fn arb_server_frame() -> impl Strategy<Value = ServerFrame> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(id, jobs)| ServerFrame::Submitted { id, jobs }),
        (any::<u64>(), any::<u64>(), arb_event())
            .prop_map(|(id, index, event)| ServerFrame::Event { id, index, event }),
        (proptest::option::of(any::<u64>()), arb_string())
            .prop_map(|(id, message)| ServerFrame::Error { id, message }),
        arb_codec().prop_map(|codec| ServerFrame::Hello { codec }),
        any::<u64>().prop_map(|nonce| ServerFrame::Pong { nonce }),
        (any::<u64>(), any::<u64>(), arb_blob())
            .prop_map(|(id, round, blob)| ServerFrame::ShardSync { id, round, blob }),
        (any::<u64>(), any::<u64>(), arb_blob())
            .prop_map(|(id, rounds, blob)| ServerFrame::ShardDone { id, rounds, blob }),
    ]
}

fn arb_client_frame() -> impl Strategy<Value = ClientFrame> {
    prop_oneof![
        (any::<u64>(), arb_string()).prop_map(|(id, spec)| ClientFrame::Submit { id, spec }),
        any::<u64>().prop_map(|id| ClientFrame::Cancel { id }),
        Just(ClientFrame::Shutdown),
        arb_codec().prop_map(|codec| ClientFrame::Hello { codec }),
        any::<u64>().prop_map(|nonce| ClientFrame::Ping { nonce }),
        (any::<u64>(), any::<u32>(), any::<u32>(), arb_string()).prop_map(
            |(id, shard, of, spec)| ClientFrame::ShardInit {
                id,
                shard,
                of,
                spec,
            }
        ),
        (any::<u64>(), any::<u64>(), arb_blob())
            .prop_map(|(id, round, blob)| ClientFrame::ShardSync { id, round, blob }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `decode ∘ encode = id` over the full binary frame vocabulary —
    /// every client frame, every server frame, every event (including
    /// `Rejected`, `Cancelled`, `State`), every output shape, and
    /// adversarial float/string payloads.
    #[test]
    fn binary_frames_round_trip(server in arb_server_frame(), client in arb_client_frame()) {
        let payload = codec::encode_server(&server);
        let back = codec::decode_server(&payload).unwrap();
        // NaN-carrying frames compare unequal; compare prints instead.
        prop_assert_eq!(format!("{server:?}"), format!("{back:?}"));
        let payload = codec::encode_client(&client);
        prop_assert_eq!(codec::decode_client(&payload).unwrap(), client);
    }

    /// Truncating an encoded frame never round-trips quietly: every
    /// strict prefix is a typed decode error, not a wrong frame.
    #[test]
    fn truncated_binary_frames_are_errors(server in arb_server_frame(), cut in any::<u64>()) {
        let payload = codec::encode_server(&server);
        if payload.len() > 1 {
            let cut = 1 + usize::try_from(cut % (payload.len() as u64 - 1)).unwrap();
            if cut < payload.len() {
                prop_assert!(codec::decode_server(&payload[..cut]).is_err());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized sessions over the shared spec strategies: whatever
    /// the workload (including specs that *fail* — typed errors cross
    /// both codecs too), text and binary sessions agree exactly.
    #[test]
    fn sessions_agree_across_codecs_randomized(spec in common::arb_runnable_spec()) {
        let server = Server::bind("127.0.0.1:0", 2).unwrap();
        assert_codecs_agree(&server, &spec.to_string());
    }
}
