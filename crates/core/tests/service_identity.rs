//! The service's contract: a [`Service`] answer is **bit-identical**
//! to running the same [`JobSpec`] directly on the caller's thread —
//! regardless of worker count, concurrency, submission order, or
//! model-cache state — and the owned facade handles really are
//! `'static + Send`.

use lsl_core::prelude::*;
use lsl_core::spec::JobKind;
use lsl_graph::generators;
use lsl_mrf::models;
use proptest::prelude::*;
use std::sync::Arc;

// ----- the ownership acceptance criterion, statically ----------------

/// `Sampler`, `ReplicaSampler`, and the engine chains are `'static`,
/// `Send` handles (compile-time assertion).
#[test]
fn owned_handles_are_static_and_send() {
    fn assert_send<T: Send + 'static>() {}
    assert_send::<Sampler>();
    assert_send::<ReplicaSampler>();
    assert_send::<lsl_core::engine::SyncChain<lsl_core::engine::rules::LocalMetropolisRule>>();
    assert_send::<lsl_core::engine::sharded::ShardedChain<lsl_core::engine::rules::GlauberRule>>();
    assert_send::<lsl_core::engine::replicas::ReplicaSet<lsl_core::engine::rules::LubyGlauberRule>>(
    );
    assert_send::<Service>();
    assert_send::<JobHandle>();
}

/// A sampler built on one thread keeps running on another — the
/// ownership redesign's point, exercised dynamically.
#[test]
fn samplers_outlive_their_build_site_and_cross_threads() {
    let sampler = {
        // The model binding dies at the end of this block; the sampler
        // owns its handle and survives.
        let mrf = Arc::new(models::proper_coloring(generators::torus(5, 5), 10));
        Sampler::for_mrf(mrf).seed(3).build().unwrap()
    };
    let handle = std::thread::spawn(move || {
        let mut sampler = sampler;
        sampler.run(50);
        (
            sampler.round(),
            sampler.mrf().unwrap().is_feasible(sampler.state()),
        )
    });
    let (rounds, feasible) = handle.join().unwrap();
    assert_eq!(rounds, 50);
    assert!(feasible);
}

// ----- bit-identity, concretely --------------------------------------

fn run_both(spec_line: &str, threads: usize) {
    let spec: JobSpec = spec_line.parse().unwrap();
    let direct = spec.run().unwrap();
    let service = Service::new(threads);
    let served = service.submit(spec).wait().unwrap();
    assert_eq!(direct, served, "service diverged on {spec_line}");
}

/// Every algorithm on the torus/cycle/G(n,p) instance families, served
/// by a 4-worker pool, matches a direct facade run bit for bit.
#[test]
fn service_matches_direct_for_every_algorithm_and_family() {
    for graph in ["torus:4x4", "cycle:11", "gnp:n=12,p=0.3"] {
        for algorithm in [
            "local-metropolis",
            "local-metropolis-no-rule3",
            "luby-glauber",
            "glauber",
            "metropolis",
        ] {
            run_both(
                &format!(
                    "graph={graph} model=coloring:q=9 algorithm={algorithm} \
                     seed=7 job=run:rounds=40"
                ),
                4,
            );
        }
    }
}

/// Schedulers, backends, and partitioners ride through the service
/// unchanged too.
#[test]
fn service_matches_direct_across_schedulers_and_backends() {
    for sched in ["luby", "singleton", "bernoulli:0.3", "chromatic"] {
        run_both(
            &format!(
                "graph=torus:4x4 model=coloring:q=9 algorithm=luby-glauber \
                 scheduler={sched} seed=3 job=run:rounds=30"
            ),
            4,
        );
    }
    for backend in ["sequential", "parallel:3", "sharded:3", "sharded:0"] {
        run_both(
            &format!(
                "graph=torus:5x5 model=ising:beta=0.4 backend={backend} \
                 seed=5 job=run:rounds=30"
            ),
            4,
        );
    }
    for partitioner in ["contiguous", "bfs", "greedy"] {
        run_both(
            &format!(
                "graph=torus:5x5 model=coloring:q=10 backend=sharded:4 \
                 partitioner={partitioner} seed=5 job=run:rounds=30"
            ),
            4,
        );
    }
}

/// Measurement jobs (tv, coalescence, distribution) and CSP scenarios
/// are served bit-identically as well.
#[test]
fn service_matches_direct_for_jobs_and_csps() {
    for line in [
        "graph=cycle:4 model=coloring:q=3 algorithm=luby-glauber seed=9 \
         job=tv:rounds=30,replicas=800",
        "graph=cycle:6 model=coloring:q=9 seed=2 job=coalescence:trials=3,max-rounds=50000",
        "graph=cycle:5 model=hardcore:lambda=1.5 seed=4 job=distribution:rounds=30,replicas=500",
        "graph=path:5 model=dominating-set seed=6 job=run:rounds=50",
        "graph=cycle:7 model=mis seed=8 job=run:rounds=40",
    ] {
        run_both(line, 4);
    }
}

/// The acceptance criterion: a ≥4-worker service under concurrent
/// submissions (shared cache, interleaved execution) answers every job
/// exactly as a direct run would.
#[test]
fn concurrent_submissions_are_bit_identical_to_direct_runs() {
    let service = Service::new(4);
    let specs: Vec<JobSpec> = (0..16)
        .map(|i| {
            format!(
                "graph=torus:4x4 model=coloring:q=9 seed={i} job=run:rounds={}",
                20 + (i % 4) * 10
            )
            .parse()
            .unwrap()
        })
        .collect();
    // Submit everything first so jobs genuinely overlap on the pool.
    let handles: Vec<JobHandle> = specs.iter().cloned().map(|s| service.submit(s)).collect();
    for (spec, handle) in specs.iter().zip(handles) {
        let served = handle.wait().unwrap();
        let direct = spec.run().unwrap();
        assert_eq!(direct, served, "diverged on {spec}");
    }
    // All sixteen jobs share one (graph, model): one cache entry.
    assert_eq!(service.cached_models(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized spot-check over the workload space: random family ×
    /// algorithm × seed, served and direct, must agree exactly.
    #[test]
    fn service_identity_randomized(
        family in 0u8..3,
        gsize in 4usize..8,
        alg_ix in 0usize..5,
        seed in 0u64..10_000,
        rounds in 10usize..60,
        threads in 2usize..6,
    ) {
        let graph = match family {
            0 => format!("torus:{gsize}x{gsize}"),
            1 => format!("cycle:{}", gsize + 3),
            _ => format!("gnp:n={},p=0.3", gsize + 6),
        };
        let algorithm = ["local-metropolis", "local-metropolis-no-rule3",
                         "luby-glauber", "glauber", "metropolis"][alg_ix];
        let line = format!(
            "graph={graph} model=coloring:q=11 algorithm={algorithm} \
             seed={seed} job=run:rounds={rounds}"
        );
        let spec: JobSpec = line.parse().unwrap();
        prop_assert_eq!(spec.job_or_default(), JobKind::Run { rounds });
        let direct = spec.run().unwrap();
        let service = Service::new(threads);
        let served = service.submit(spec).wait().unwrap();
        prop_assert_eq!(direct, served, "service diverged on {}", line);
    }
}
