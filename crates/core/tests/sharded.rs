//! The sharded backend's determinism contract: owner-computes shards
//! with boundary exchange are **bit-identical** to the sequential
//! backend — for every partitioner, every algorithm, every scheduler,
//! on torus, cycle, and G(n,p) instances — and the communication
//! accounting obeys the cut bound.

use lsl_core::engine::rules::{GlauberRule, LocalMetropolisRule, LubyGlauberRule, MetropolisRule};
use lsl_core::engine::sharded::ShardedChain;
use lsl_core::engine::{SyncChain, SyncRule};
use lsl_core::prelude::*;
use lsl_core::schedule::{BernoulliFilterScheduler, ChromaticScheduler, SingletonScheduler};
use lsl_graph::partition::{Partition, Partitioner};
use lsl_graph::Graph;
use lsl_mrf::{models, Mrf};
use proptest::prelude::*;
use rand::rngs::StdRng;
// Redundant under the offline proptest stand-in (its macro injects the
// trait), but required if the stand-ins are swapped for the real crates.
#[allow(unused_imports)]
use rand::SeedableRng;

/// Strategy: one of the three instance families the contract is stated
/// over — torus, cycle, and G(n,p).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (0u8..3, 0u64..1_000).prop_map(|(family, seed)| match family {
        0 => lsl_graph::generators::torus(3 + (seed % 4) as usize, 3 + (seed / 4 % 4) as usize),
        1 => lsl_graph::generators::cycle(5 + (seed % 20) as usize),
        _ => {
            let mut rng = StdRng::seed_from_u64(seed);
            lsl_graph::generators::gnp(8 + (seed % 17) as usize, 0.25, &mut rng)
        }
    })
}

/// Runs `rule` under the sequential backend and under every partitioner
/// at `k` shards, asserting the trajectories never diverge.
fn assert_sharded_identity<R: SyncRule + Clone>(
    mrf: &Mrf,
    rule: R,
    seed: u64,
    k: usize,
    rounds: usize,
) {
    let mut seq = SyncChain::new(mrf, rule.clone(), seed);
    let mut sharded: Vec<(&'static str, ShardedChain<R>)> = Partitioner::ALL
        .iter()
        .map(|p| {
            let part = p.partition(mrf.graph(), k);
            (p.name(), ShardedChain::new(mrf, rule.clone(), seed, part))
        })
        .collect();
    for r in 0..rounds {
        seq.step();
        for (name, chain) in sharded.iter_mut() {
            chain.step();
            assert_eq!(
                seq.state(),
                chain.state(),
                "{name} partition diverged at round {r} with {k} shards"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn local_metropolis_sharded_matches_sequential(
        g in arb_graph(), seed in 0u64..1_000, k in 1usize..6
    ) {
        let q = 2 * g.max_degree().max(1) + 2;
        let mrf = models::proper_coloring(g, q);
        assert_sharded_identity(&mrf, LocalMetropolisRule::new(), seed, k, 12);
    }

    #[test]
    fn local_metropolis_soft_model_sharded_matches_sequential(
        g in arb_graph(), seed in 0u64..1_000, k in 1usize..6
    ) {
        // Ising exercises the fractional-coin path (coins actually drawn).
        let mrf = models::ising(g, 0.4);
        assert_sharded_identity(&mrf, LocalMetropolisRule::new(), seed, k, 12);
    }

    #[test]
    fn luby_glauber_sharded_matches_sequential_under_every_scheduler(
        g in arb_graph(), seed in 0u64..1_000, k in 1usize..6
    ) {
        let q = 2 * g.max_degree().max(1) + 2;
        let mrf = models::proper_coloring(g, q);
        assert_sharded_identity(&mrf, LubyGlauberRule::luby(), seed, k, 10);
        assert_sharded_identity(
            &mrf,
            LubyGlauberRule::with_scheduler(BernoulliFilterScheduler::new(0.3)),
            seed, k, 10,
        );
        assert_sharded_identity(
            &mrf,
            LubyGlauberRule::with_scheduler(SingletonScheduler),
            seed, k, 10,
        );
        assert_sharded_identity(
            &mrf,
            LubyGlauberRule::with_scheduler(ChromaticScheduler::greedy(mrf.graph())),
            seed, k, 10,
        );
    }

    #[test]
    fn single_site_rules_sharded_match_sequential(
        g in arb_graph(), seed in 0u64..1_000, k in 1usize..6
    ) {
        let q = 2 * g.max_degree().max(1) + 2;
        let mrf = models::proper_coloring(g, q);
        assert_sharded_identity(&mrf, GlauberRule, seed, k, 40);
        assert_sharded_identity(&mrf, MetropolisRule, seed, k, 40);
    }

    #[test]
    fn facade_sharded_backend_matches_sequential(
        g in arb_graph(), seed in 0u64..1_000, shards in 1usize..6
    ) {
        let q = 2 * g.max_degree().max(1) + 2;
        let mrf = models::proper_coloring(g, q);
        for alg in [
            Algorithm::LocalMetropolis,
            Algorithm::LubyGlauber,
            Algorithm::Glauber,
        ] {
            let build = |backend| {
                let mut s = Sampler::for_mrf(&mrf)
                    .algorithm(alg)
                    .backend(backend)
                    .seed(seed)
                    .build()
                    .unwrap();
                s.run(15);
                s.state().to_vec()
            };
            prop_assert_eq!(
                build(Backend::Sequential),
                build(Backend::Sharded { shards }),
                "facade sharded diverged: {:?}",
                alg
            );
        }
    }

    #[test]
    fn per_round_messages_respect_the_cut_bound(
        g in arb_graph(), seed in 0u64..1_000, k in 2usize..6
    ) {
        let q = 2 * g.max_degree().max(1) + 2;
        let mrf = models::proper_coloring(g, q);
        for p in Partitioner::ALL {
            let part = p.partition(mrf.graph(), k);
            let cut = part.stats(mrf.graph()).cut_size as u64;
            let mut chain = ShardedChain::new(&mrf, LocalMetropolisRule::new(), seed, part);
            chain.run(6);
            for rc in chain.comm().per_round() {
                // One message per (boundary vertex, subscriber) pair,
                // and each cut edge induces at most two such pairs.
                prop_assert!(rc.messages <= 2 * cut, "{} > 2*{cut}", rc.messages);
                prop_assert!(rc.changed <= rc.messages);
                // Payload is charged at the packed width.
                let bits = u64::from(chain.packing().bits_per_spin());
                prop_assert_eq!(rc.bytes, (rc.messages * bits).div_ceil(8));
            }
        }
    }
}

/// The sharded backend composes with the rest of the facade surface:
/// burn-in, explicit starts, and `step_keyed` grand couplings.
#[test]
fn facade_sharded_composes_with_builder_options() {
    let mrf = models::proper_coloring(lsl_graph::generators::torus(5, 5), 12);
    let start = lsl_core::single_site::default_start(&mrf);
    let build = |backend| {
        Sampler::for_mrf(&mrf)
            .algorithm(Algorithm::LocalMetropolis)
            .backend(backend)
            .start(start.clone())
            .seed(9)
            .burn_in(20)
            .build()
            .unwrap()
    };
    let mut a = build(Backend::Sequential);
    let mut b = build(Backend::Sharded { shards: 4 });
    assert_eq!(a.round(), 20);
    assert_eq!(b.round(), 20);
    assert_eq!(a.state(), b.state());
    // Externally keyed rounds stay coupled too.
    let mut keys = Xoshiro256pp::seed_from(31);
    for _ in 0..10 {
        let k = keys.next();
        a.step_keyed(k);
        b.step_keyed(k);
        assert_eq!(a.state(), b.state());
    }
}

/// The facade surfaces the sharded executor's communication record:
/// `Some` (growing, resettable) on `Backend::Sharded`, `None` on the
/// flat backends.
#[test]
fn facade_exposes_comm_stats_on_sharded_only() {
    let mrf = models::proper_coloring(lsl_graph::generators::torus(5, 5), 12);
    let mut sharded = Sampler::for_mrf(&mrf)
        .backend(Backend::Sharded { shards: 4 })
        .seed(2)
        .build()
        .unwrap();
    sharded.run(8);
    let comm = sharded.comm_stats().expect("sharded has accounting");
    assert_eq!(comm.rounds_seen(), 8);
    assert!(comm.total_messages() > 0);
    assert!(comm.total_changed() <= comm.total_messages());
    sharded.reset_comm_stats();
    assert_eq!(sharded.comm_stats().unwrap().rounds_seen(), 0);

    let mut flat = Sampler::for_mrf(&mrf).seed(2).build().unwrap();
    flat.run(8);
    assert!(flat.comm_stats().is_none(), "flat backends cross no cut");
    flat.reset_comm_stats(); // documented no-op
}

/// `Backend::Sharded { shards: 0 }` resolves to the available cores and
/// still builds (clamped to the vertex count for small models).
#[test]
fn facade_sharded_auto_shard_count_builds() {
    let mrf = models::proper_coloring(lsl_graph::generators::cycle(6), 4);
    let mut s = Sampler::for_mrf(&mrf)
        .backend(Backend::Sharded { shards: 0 })
        .seed(3)
        .build()
        .unwrap();
    s.run(25);
    assert!(mrf.is_feasible(s.state()));
}

/// A partition with more shards than boundary structure (every vertex
/// its own shard) is the fully-distributed extreme: one slab per
/// vertex, all neighbors ghosts — still bit-identical.
#[test]
fn one_shard_per_vertex_matches_sequential() {
    let mrf = models::proper_coloring(lsl_graph::generators::cycle(8), 5);
    let part = Partition::contiguous(mrf.graph(), 8);
    let mut seq = SyncChain::new(&mrf, LubyGlauberRule::luby(), 6);
    let mut sharded = ShardedChain::new(&mrf, LubyGlauberRule::luby(), 6, part);
    for _ in 0..20 {
        seq.step();
        sharded.step();
        assert_eq!(seq.state(), sharded.state());
    }
    // Every edge is cut: per synchronous round the exchange ships both
    // endpoints of every edge exactly once.
    let m = mrf.graph().num_edges() as u64;
    for rc in sharded.comm().per_round() {
        assert_eq!(rc.messages, 2 * m);
    }
}
