//! The sampler facade's contract with the legacy surface:
//!
//! 1. **Bit-identity** — builder-constructed samplers produce exactly
//!    the trajectories of the legacy constructors, on torus, cycle, and
//!    G(n,p) instances, across all three execution backends
//!    (sequential, parallel, batched replicas). The facade is pure
//!    wiring; it must never change a single spin.
//! 2. **Typed rejection** — every invalid builder combination returns a
//!    [`BuildError`] value; nothing panics.
#![allow(deprecated)] // the legacy constructors are one side of the contract

use lsl_core::engine::rules::{GlauberRule, LocalMetropolisRule, LubyGlauberRule};
use lsl_core::engine::SyncChain;
use lsl_core::local_metropolis::LocalMetropolis;
use lsl_core::luby_glauber::LubyGlauber;
use lsl_core::prelude::*;
use lsl_core::single_site::GlauberChain;
use lsl_graph::generators;
use lsl_mrf::{models, Mrf};
use proptest::prelude::*;

/// Drives a facade sampler and a legacy wrapper with the *same* stream
/// of per-step keys (the wrappers key each step by one draw from the
/// caller's generator; `Sampler::step_keyed` accepts the identical
/// draws) and asserts the trajectories never diverge.
fn assert_keyed_identity<C: Chain>(mut facade: Sampler, mut legacy: C, seed: u64, rounds: usize) {
    let mut facade_rng = Xoshiro256pp::seed_from(seed);
    let mut legacy_rng = Xoshiro256pp::seed_from(seed);
    for r in 0..rounds {
        facade.step_keyed(facade_rng.next());
        legacy.step(&mut legacy_rng);
        assert_eq!(
            facade.state(),
            legacy.state(),
            "facade and legacy diverged at round {r}"
        );
    }
}

/// Bit-identity of every (algorithm, backend) pair on one instance:
/// sequential facade vs legacy, parallel facade vs legacy, and the
/// batched replica backend (coupled replicas vs per-start engine
/// chains keyed by the same master).
fn assert_facade_matches_legacy(mrf: &Mrf, seed: u64, threads: usize, rounds: usize) {
    // LocalMetropolis: sequential and parallel backends.
    for backend in [Backend::Sequential, Backend::Parallel { threads }] {
        let facade = Sampler::for_mrf(mrf)
            .algorithm(Algorithm::LocalMetropolis)
            .backend(backend)
            .build()
            .unwrap();
        assert_keyed_identity(facade, LocalMetropolis::new(mrf), seed, rounds);

        let facade = Sampler::for_mrf(mrf)
            .algorithm(Algorithm::LubyGlauber)
            .backend(backend)
            .build()
            .unwrap();
        assert_keyed_identity(facade, LubyGlauber::new(mrf), seed, rounds);
    }

    // Glauber (single-site fast path), sequential.
    let facade = Sampler::for_mrf(mrf)
        .algorithm(Algorithm::Glauber)
        .build()
        .unwrap();
    assert_keyed_identity(facade, GlauberChain::new(mrf), seed, rounds);

    // Batched replica backend: a coupled facade batch from adversarial
    // starts must reproduce, copy for copy, legacy engine chains built
    // from the same starts under the same master seed.
    let starts = lsl_core::coupling::adversarial_starts(mrf, 2, seed);
    let mut batch = Sampler::for_mrf(mrf)
        .algorithm(Algorithm::LocalMetropolis)
        .backend(Backend::Parallel { threads })
        .seed(seed)
        .replicas(starts.len())
        .starts(starts.clone())
        .coupled()
        .build()
        .unwrap();
    let mut singles: Vec<SyncChain<LocalMetropolisRule>> = starts
        .iter()
        .map(|s| SyncChain::with_state(mrf, LocalMetropolisRule::new(), seed, s.clone()))
        .collect();
    for _ in 0..rounds {
        batch.step();
        for c in singles.iter_mut() {
            c.step();
        }
    }
    for (b, c) in singles.iter().enumerate() {
        assert_eq!(batch.state(b), c.state(), "replica {b} diverged");
    }

    // And iid facade replicas must match a legacy independent ReplicaSet
    // under the same seed (the facade adds no randomness of its own).
    let mut iid = Sampler::for_mrf(mrf)
        .algorithm(Algorithm::LubyGlauber)
        .seed(seed)
        .replicas(3)
        .build()
        .unwrap();
    let mut legacy_set =
        lsl_core::engine::replicas::ReplicaSet::independent(mrf, LubyGlauberRule::luby(), 3, seed);
    iid.run(rounds);
    legacy_set.run(rounds);
    for b in 0..3 {
        assert_eq!(
            iid.state(b),
            legacy_set.state(b),
            "iid replica {b} diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn facade_bit_identical_on_torus(
        seed in 0u64..10_000, rows in 3usize..6, cols in 3usize..6, threads in 2usize..5
    ) {
        let mrf = models::proper_coloring(generators::torus(rows, cols), 9);
        assert_facade_matches_legacy(&mrf, seed, threads, 10);
    }

    #[test]
    fn facade_bit_identical_on_cycle(
        seed in 0u64..10_000, len in 4usize..24, threads in 2usize..7
    ) {
        let mrf = models::proper_coloring(generators::cycle(len), 5);
        assert_facade_matches_legacy(&mrf, seed, threads, 10);
    }

    #[test]
    fn facade_bit_identical_on_random_graphs(
        seed in 0u64..10_000, gseed in 0u64..500, threads in 2usize..5
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(gseed);
        let g = generators::gnp(12, 0.3, &mut rng);
        let q = 2 * g.max_degree() + 2;
        let mrf = models::proper_coloring(g, q.max(3));
        assert_facade_matches_legacy(&mrf, seed, threads, 10);
    }

    #[test]
    fn facade_scheduler_chains_bit_identical(seed in 0u64..10_000) {
        // Custom schedulers route through the same rules as the legacy
        // generic wrapper.
        let mrf = models::proper_coloring(generators::torus(4, 4), 9);
        let facade = Sampler::for_mrf(&mrf)
            .algorithm(Algorithm::LubyGlauber)
            .scheduler(Sched::Singleton)
            .build()
            .unwrap();
        let legacy = LubyGlauber::with_scheduler(&mrf, lsl_core::schedule::SingletonScheduler);
        assert_keyed_identity(facade, legacy, seed, 15);

        let facade = Sampler::for_mrf(&mrf)
            .algorithm(Algorithm::LubyGlauber)
            .scheduler(Sched::Bernoulli(0.3))
            .build()
            .unwrap();
        let legacy = LubyGlauber::with_scheduler(
            &mrf,
            lsl_core::schedule::BernoulliFilterScheduler::new(0.3),
        );
        assert_keyed_identity(facade, legacy, seed, 15);
    }
}

// ----- typed rejection: invalid combinations are errors, not panics ---

#[test]
fn zero_replicas_is_a_typed_error() {
    let mrf = models::proper_coloring(generators::cycle(4), 3);
    let err = Sampler::for_mrf(&mrf).replicas(0).build().unwrap_err();
    assert_eq!(err, BuildError::ZeroReplicas);
}

#[test]
fn scheduler_on_unscheduled_algorithms_is_a_typed_error() {
    let mrf = models::proper_coloring(generators::cycle(4), 3);
    for alg in [
        Algorithm::LocalMetropolis,
        Algorithm::LocalMetropolisNoRule3,
        Algorithm::Glauber,
        Algorithm::Metropolis,
    ] {
        let err = Sampler::for_mrf(&mrf)
            .algorithm(alg)
            .scheduler(Sched::Luby)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::SchedulerNotApplicable { algorithm: alg });
    }
}

#[test]
fn invalid_bernoulli_probability_is_a_typed_error() {
    let mrf = models::proper_coloring(generators::cycle(4), 3);
    for p in [0.0, -0.5, 1.5, f64::NAN] {
        let err = Sampler::for_mrf(&mrf)
            .algorithm(Algorithm::LubyGlauber)
            .scheduler(Sched::Bernoulli(p))
            .build()
            .unwrap_err();
        assert!(
            matches!(err, BuildError::InvalidBernoulliProbability { .. }),
            "p = {p}: got {err:?}"
        );
    }
}

#[test]
fn wrong_start_length_is_a_typed_error() {
    let mrf = models::proper_coloring(generators::cycle(6), 4);
    let err = Sampler::for_mrf(&mrf)
        .start(vec![0; 5])
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        BuildError::StartLength {
            expected: 6,
            got: 5
        }
    );
    // And on replica batches, including per-replica starts.
    let err = Sampler::for_mrf(&mrf)
        .replicas(2)
        .starts(vec![vec![0; 6], vec![0; 3]])
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        BuildError::StartLength {
            expected: 6,
            got: 3
        }
    );
}

#[test]
fn start_count_mismatch_is_a_typed_error() {
    let mrf = models::proper_coloring(generators::cycle(6), 4);
    let err = Sampler::for_mrf(&mrf)
        .replicas(3)
        .starts(vec![vec![0; 6]; 2])
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        BuildError::StartCount {
            expected: 3,
            got: 2
        }
    );
}

#[test]
fn csp_restrictions_are_typed_errors() {
    use std::sync::Arc;
    let csp = lsl_mrf::csp::Csp::dominating_set(Arc::new(generators::path(4)));

    // No default start on constrained solution spaces.
    let err = Sampler::for_csp(&csp).build().unwrap_err();
    assert_eq!(err, BuildError::StartRequiredForCsp);

    // Sequential baselines are not defined on CSPs.
    let err = Sampler::for_csp(&csp)
        .algorithm(Algorithm::Glauber)
        .start(vec![1; 4])
        .build()
        .unwrap_err();
    assert!(matches!(err, BuildError::UnsupportedOnCsp { .. }));

    // Neither is replica batching (engine rules only).
    let err = Sampler::for_csp(&csp)
        .start(vec![1; 4])
        .replicas(2)
        .build()
        .unwrap_err();
    assert!(matches!(err, BuildError::UnsupportedOnCsp { .. }));

    // Neither are the batched measurement jobs.
    let err = Sampler::for_csp(&csp)
        .start(vec![1; 4])
        .coalescence(2, 100)
        .unwrap_err();
    assert!(matches!(err, BuildError::UnsupportedOnCsp { .. }));
}

#[test]
fn empty_model_is_a_typed_error() {
    let mrf = models::proper_coloring(lsl_graph::Graph::from_edges(0, &[]), 3);
    let err = Sampler::for_mrf(&mrf).build().unwrap_err();
    assert_eq!(err, BuildError::EmptyModel);
}

#[test]
fn glauber_facade_replicas_match_glauber_rule_set() {
    // The single-site fast path survives the facade's replica backend.
    let mrf = models::proper_coloring(generators::cycle(8), 5);
    let mut facade = Sampler::for_mrf(&mrf)
        .algorithm(Algorithm::Glauber)
        .seed(2)
        .replicas(6)
        .build()
        .unwrap();
    let mut legacy = lsl_core::engine::replicas::ReplicaSet::independent(&mrf, GlauberRule, 6, 2);
    facade.run(200);
    legacy.run(200);
    for b in 0..6 {
        assert_eq!(facade.state(b), legacy.state(b));
    }
}
