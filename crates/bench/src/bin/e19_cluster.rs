//! E19 — the cluster layer's cost: coordinated sweeps and
//! cross-process sharded chains vs their local equivalents.
//!
//! PR 10 added [`Coordinator`]: a sweep fanned over a worker fleet
//! (plain tier) and `backend=cluster:k` members executed as k
//! cross-process shards exchanging per-round `shard-sync` frames
//! (distributed tier). This experiment measures both against the
//! in-process baselines they are bit-identical to:
//!
//! * **plain tier** — one seed sweep coordinated over fleets of 1, 2,
//!   and 3 loopback workers vs a single in-process [`Service`];
//! * **distributed tier** — one `cluster:k` member for k in {1, 2, 4}
//!   vs the same spec run directly (the in-process sharded chain),
//!   isolating the per-round barrier + frame cost.
//!
//! Every row's results are asserted **bit-identical** to the local
//! answer, so the sweep isolates pure cluster cost: connection
//! management, frame encode/decode, and round barriers.
//!
//! Results are printed as TSV and recorded to `BENCH_cluster.json` at
//! the workspace root. `--tiny` (or `quick` / `LSL_BENCH_QUICK=1`)
//! shrinks the workload for smoke runs and skips the JSON write.
//!
//! NOTE: this container exposes 1 CPU, so multi-worker rows measure
//! coordination overhead at fixed compute, not fleet scaling — and the
//! distributed tier pays a per-round synchronization barrier that only
//! pays off when shards get real cores. Rerun on multicore hardware
//! for real scaling numbers.

use lsl_bench::{header, header_row, row};
use lsl_core::cluster::Coordinator;
use lsl_core::net::Server;
use lsl_core::service::Service;
use lsl_core::spec::{JobSpec, SweepSpec};
use std::time::Instant;

struct Row {
    tier: &'static str,
    mode: String,
    jobs: usize,
    secs: f64,
    jobs_per_sec: f64,
    vs_local: f64,
}

/// Spins up `n` loopback workers and a coordinator over them.
fn fleet(n: usize, threads: usize) -> (Vec<Server>, Coordinator) {
    let servers: Vec<Server> = (0..n)
        .map(|_| Server::bind("127.0.0.1:0", threads).expect("bind a loopback worker"))
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let coord = Coordinator::connect(addrs).expect("connect the fleet");
    (servers, coord)
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny" || a == "tiny" || a == "quick")
        || std::env::var("LSL_BENCH_QUICK").is_ok_and(|v| v != "0");
    let (side, rounds, seeds, worker_counts, shard_counts): (
        usize,
        usize,
        usize,
        Vec<usize>,
        Vec<usize>,
    ) = if tiny {
        (8, 20, 4, vec![1, 2], vec![1, 2])
    } else {
        (24, 200, 24, vec![1, 2, 3], vec![1, 2, 4])
    };
    let threads = 2;

    header(&[
        "E19: cluster layer (coordinated sweeps + cross-process shards vs local)",
        "plain tier: one seed sweep over 1/2/3-worker fleets vs in-process Service;",
        "distributed tier: backend=cluster:k vs the direct run (1-CPU container:",
        "rows measure coordination overhead at fixed compute, see rustdoc)",
    ]);
    header_row("tier,mode,jobs,secs,jobs_per_sec,vs_local");

    let mut rows: Vec<Row> = Vec::new();

    // ----- plain tier: a seed sweep over the fleet --------------------
    let line = format!(
        "graph=torus:{side}x{side} model=coloring:q=16 job=run:rounds={rounds} seeds=0..{seeds}"
    );
    let sweep: SweepSpec = line.parse().expect("a valid E19 sweep");
    let t = Instant::now();
    let local = Service::new(threads)
        .submit_sweep(&sweep)
        .wait()
        .expect("the local sweep");
    let secs = t.elapsed().as_secs_f64();
    let base_rate = seeds as f64 / secs;
    rows.push(Row {
        tier: "sweep",
        mode: "in-process".into(),
        jobs: seeds,
        secs,
        jobs_per_sec: base_rate,
        vs_local: 1.0,
    });
    for &workers in &worker_counts {
        let (_servers, coord) = fleet(workers, threads);
        let t = Instant::now();
        let run = coord.run_sweep(&line).expect("the coordinated sweep");
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(
            run.result, local,
            "the cluster changed a sweep result — determinism violated"
        );
        let rate = seeds as f64 / secs;
        rows.push(Row {
            tier: "sweep",
            mode: format!("fleet:{workers}"),
            jobs: seeds,
            secs,
            jobs_per_sec: rate,
            vs_local: rate / base_rate,
        });
    }

    // ----- distributed tier: one member as cross-process shards -------
    for &k in &shard_counts {
        let line = format!(
            "graph=torus:{side}x{side} model=coloring:q=16 backend=cluster:{k} \
             seed=7 job=run:rounds={rounds}"
        );
        let spec: JobSpec = line.parse().expect("a valid E19 member");
        let t = Instant::now();
        let direct = spec.run().expect("the direct run");
        let direct_secs = t.elapsed().as_secs_f64();
        let direct_rate = rounds as f64 / direct_secs;
        rows.push(Row {
            tier: "shards",
            mode: format!("in-process:{k}"),
            jobs: rounds,
            secs: direct_secs,
            jobs_per_sec: direct_rate,
            vs_local: 1.0,
        });
        let (_servers, coord) = fleet(2.min(k), threads);
        let t = Instant::now();
        let run = coord.run_sweep(&line).expect("the distributed member");
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(
            run.result.results[0], direct,
            "cross-process shards changed the result — determinism violated"
        );
        let rate = rounds as f64 / secs;
        rows.push(Row {
            tier: "shards",
            mode: format!("cluster:{k}"),
            jobs: rounds,
            secs,
            jobs_per_sec: rate,
            vs_local: rate / direct_rate,
        });
    }

    for r in &rows {
        row(&[
            r.tier.to_string(),
            r.mode.clone(),
            r.jobs.to_string(),
            format!("{:.4}", r.secs),
            format!("{:.1}", r.jobs_per_sec),
            format!("{:.2}", r.vs_local),
        ]);
    }

    // Record the datapoint (hand-rolled JSON: no serde in the tree).
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"tier\": \"{}\", \"mode\": \"{}\", \"jobs\": {}, \"secs\": {:.6}, \
                 \"jobs_per_sec\": {:.1}, \"vs_local\": {:.2}}}",
                r.tier, r.mode, r.jobs, r.secs, r.jobs_per_sec, r.vs_local,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"cluster\",\n  \"workload\": \"seed sweep coordinated over \
         1/2/3-worker loopback fleets vs in-process Service, and backend=cluster:k members \
         (k=1/2/4) as cross-process shards vs the direct sharded run\",\n  \"note\": \"1-CPU \
         container: rows measure coordination + per-round barrier overhead at fixed compute, \
         not fleet scaling\",\n  \"meta\": {},\n  \"tiny\": {tiny},\n  \"rows\": [\n{}\n  ]\n}}\n",
        lsl_bench::meta_json(),
        json_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    if tiny {
        // Smoke runs must not clobber the recorded full-workload datapoint.
        println!("# tiny run: not recording {path}");
    } else if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not record {path}: {e}");
    } else {
        println!("# recorded {path}");
    }
}
