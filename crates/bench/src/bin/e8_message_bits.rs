//! E8 — "Neither of the algorithms abuses the power of the LOCAL model:
//! each message is of O(log n) bits for a polynomial domain size
//! q = poly(n)" (§1.1).
//!
//! We run both vertex programs on growing networks with q = n and report
//! the measured maximum message size: it stays at (spin bits + coin/β
//! bits) ≈ 2·log₂(q) + 64-scale — logarithmic in n, nowhere near the
//! O(n)-bit budget LOCAL would allow.

use lsl_bench::{header, header_row, row, scaled};
use lsl_core::programs::{LocalMetropolisProgram, LubyGlauberProgram};
use lsl_graph::generators;
use lsl_local::runtime::Simulator;
use lsl_mrf::models;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    header(&[
        "E8: message-size accounting (§1.1 remark)",
        "q = n (polynomial domain); max message bits per program",
    ]);
    header_row("n,q,delta,program,rounds,max_msg_bits,avg_msg_bits,log2_n");
    for n in scaled(vec![64usize, 256, 1024, 4096], vec![64, 256]) {
        let delta = 6;
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = generators::random_regular(n, delta, &mut rng);
        let mrf = models::proper_coloring(g, n); // q = n = poly(n)
        let rounds = 10;
        let sim = Simulator::new(mrf.graph_arc(), 1);
        let a = sim.run_with::<LubyGlauberProgram>(rounds, &mrf);
        row(&[
            n.to_string(),
            n.to_string(),
            delta.to_string(),
            "LubyGlauber".into(),
            rounds.to_string(),
            a.stats.max_message_bits.to_string(),
            format!(
                "{:.1}",
                a.stats.total_bits as f64 / a.stats.messages.max(1) as f64
            ),
            format!("{:.1}", (n as f64).log2()),
        ]);
        let b = sim.run_with::<LocalMetropolisProgram>(rounds, &mrf);
        row(&[
            n.to_string(),
            n.to_string(),
            delta.to_string(),
            "LocalMetropolis".into(),
            rounds.to_string(),
            b.stats.max_message_bits.to_string(),
            format!(
                "{:.1}",
                b.stats.total_bits as f64 / b.stats.messages.max(1) as f64
            ),
            format!("{:.1}", (n as f64).log2()),
        ]);
    }
}
