//! E17 — hot-path engine: packed state slabs, block RNG, and
//! lane-batched kernels.
//!
//! The engine's determinism contract (every draw of round `r` is a
//! pure function of `(master, r, vertex)`) permits a much faster
//! *implementation* of the same trajectory: pack states into u8/bit
//! lanes, fill each round's randomness as one contiguous block of
//! stream heads instead of constructing a generator per vertex, and
//! sweep same-phase vertices in batches over the slab. This sweep
//! measures each layer against the scalar oracle on the step-engine
//! reference workloads:
//!
//! * 256×256 torus Ising at β = 0.4 under LocalMetropolis — the
//!   headline row (bit lanes, q = 2), targeting ≥ 3× the scalar
//!   baseline's vertex-steps/sec;
//! * 256×256 torus proper coloring, q = 16 — the byte-lane regime.
//!
//! Every row is one [`JobSpec`] differing only in the `hotpath=` key,
//! and every row's final-state fingerprint is asserted equal to the
//! scalar row's — the sweep *witnesses* bit-identity while it measures
//! (the fuller property-test matrix lives in
//! `crates/core/tests/hotpath_identity.rs`).
//!
//! ```text
//! e17_hotpath [--tiny]
//! ```
//!
//! Results are printed as TSV and recorded to `BENCH_hotpath.json` at
//! the workspace root. `--tiny` (or `quick` / `LSL_BENCH_QUICK=1`)
//! shrinks the workload for smoke runs and skips the JSON write.

use lsl_bench::{header, header_row, row};
use lsl_core::engine::HotPath;
use lsl_core::spec::{BuiltModel, JobOutput, JobSpec};

struct Row {
    workload: &'static str,
    hotpath: String,
    n: usize,
    rounds: usize,
    secs: f64,
    steps_vertices_per_sec: f64,
    speedup_vs_scalar: f64,
    fingerprint: u64,
}

/// Runs `spec` on the prebuilt model `repeats` times; returns the best
/// wall clock and the (deterministic) final-state fingerprint.
fn best_run(spec: &JobSpec, model: &BuiltModel, repeats: usize) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut fp = 0;
    for _ in 0..repeats {
        let result = spec.run_on(model).expect("a valid E17 spec");
        best = best.min(result.elapsed_secs);
        match result.output {
            JobOutput::Run { fingerprint, .. } => fp = fingerprint,
            other => panic!("expected a run output, got {other:?}"),
        }
    }
    (best, fp)
}

fn sweep(
    workload: &'static str,
    model_spec: &str,
    side: usize,
    variants: &[HotPath],
    rounds: usize,
    repeats: usize,
    rows: &mut Vec<Row>,
) {
    let base: JobSpec = format!(
        "graph=torus:{side}x{side} model={model_spec} algorithm=local-metropolis \
         seed=1 job=run:rounds={rounds}"
    )
    .parse()
    .expect("a valid E17 base spec");
    let model = base.build_model();
    let n = side * side;

    let mut scalar_rate = f64::NAN;
    let mut scalar_fp = 0;
    for (i, hp) in std::iter::once(&HotPath::Scalar)
        .chain(variants)
        .enumerate()
    {
        let mut spec = base.clone();
        spec.hotpath = Some(*hp);
        let (secs, fp) = best_run(&spec, &model, repeats);
        let rate = rounds as f64 * n as f64 / secs;
        if i == 0 {
            scalar_rate = rate;
            scalar_fp = fp;
        }
        assert_eq!(
            fp, scalar_fp,
            "{workload} hotpath={hp} diverged from the scalar oracle"
        );
        rows.push(Row {
            workload,
            hotpath: hp.to_string(),
            n,
            rounds,
            secs,
            steps_vertices_per_sec: rate,
            speedup_vs_scalar: rate / scalar_rate,
            fingerprint: fp,
        });
    }
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny" || a == "tiny" || a == "quick")
        || std::env::var("LSL_BENCH_QUICK").is_ok_and(|v| v != "0");
    let (side, rounds, repeats) = if tiny { (48, 4, 1) } else { (256, 96, 4) };

    // Scalar first (implicit), then every lane variant the model's q
    // admits: the full packing × RNG matrix on Ising (q = 2 supports
    // bit lanes), the wide/byte column on q = 16 coloring.
    let ising: Vec<HotPath> = ["wide", "byte", "bit"]
        .iter()
        .flat_map(|p| {
            ["block", "pervertex"]
                .iter()
                .map(move |r| format!("lanes:{p}:{r}").parse().expect("a lane variant"))
        })
        .collect();
    let coloring: Vec<HotPath> = [
        "lanes:wide:block",
        "lanes:byte:block",
        "lanes:byte:pervertex",
    ]
    .iter()
    .map(|s| s.parse().expect("a lane variant"))
    .collect();

    header(&[
        "E17: hot-path engine: packed slabs + block RNG + lane kernels",
        "every row is bit-identical to the scalar oracle (fingerprints asserted);",
        "headline: lanes:bit:block on the torus Ising local-metropolis workload",
    ]);
    header_row("workload,hotpath,n,rounds,secs,steps_vertices_per_sec,speedup_vs_scalar");

    let mut rows: Vec<Row> = Vec::new();
    sweep(
        "torus-ising",
        "ising:beta=0.4",
        side,
        &ising,
        rounds,
        repeats,
        &mut rows,
    );
    sweep(
        "torus-coloring-q16",
        "coloring:q=16",
        side,
        &coloring,
        rounds,
        repeats,
        &mut rows,
    );

    for r in &rows {
        row(&[
            r.workload.into(),
            r.hotpath.clone(),
            r.n.to_string(),
            r.rounds.to_string(),
            format!("{:.4}", r.secs),
            format!("{:.3e}", r.steps_vertices_per_sec),
            format!("{:.2}", r.speedup_vs_scalar),
        ]);
    }

    // Record the datapoint (hand-rolled JSON: no serde in the tree).
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"workload\": \"{}\", \"hotpath\": \"{}\", \"n\": {}, \"rounds\": {}, \
                 \"secs\": {:.6}, \"steps_vertices_per_sec\": {:.1}, \
                 \"speedup_vs_scalar\": {:.3}, \"fingerprint\": \"{:016x}\"}}",
                r.workload,
                r.hotpath,
                r.n,
                r.rounds,
                r.secs,
                r.steps_vertices_per_sec,
                r.speedup_vs_scalar,
                r.fingerprint,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"workload\": \"LocalMetropolis torus Ising \
         beta=0.4 + proper coloring q=16, hotpath sweep (scalar oracle vs packed lane \
         kernels x block RNG)\",\n  \"meta\": {},\n  \"tiny\": {tiny},\n  \"rows\": \
         [\n{}\n  ]\n}}\n",
        lsl_bench::meta_json(),
        json_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    if tiny {
        // Smoke runs must not clobber the recorded full-workload datapoint.
        println!("# tiny run: not recording {path}");
    } else if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not record {path}: {e}");
    } else {
        println!("# recorded {path}");
    }
}
