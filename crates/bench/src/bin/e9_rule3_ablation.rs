//! E9 — the paper's remark on LocalMetropolis filter rule 3: "Although at
//! first glance the third filtering rule looks redundant, it is necessary
//! to guarantee the reversibility of the chain as well as the uniform
//! stationary distribution."
//!
//! For each small model we build the exact kernel with and without the
//! third filter factor `Ã(σ_u, X_v)` and report the detailed-balance
//! residual w.r.t. Gibbs and the TV distance between the chain's true
//! stationary distribution (by power iteration) and Gibbs. The ablated
//! chain is irreversible on every instance and converges to a *wrong*
//! distribution on all but degenerate ones.

use lsl_bench::{header, header_row, row};
use lsl_core::kernel::local_metropolis_kernel;
use lsl_graph::generators;
use lsl_mrf::gibbs::Enumeration;
use lsl_mrf::models;
use lsl_mrf::Mrf;

fn report(name: &str, mrf: &Mrf) {
    let exact = Enumeration::new(mrf).expect("small model");
    let pi = exact.distribution();
    for (variant, rule3) in [("full", true), ("no-rule-3", false)] {
        let k = local_metropolis_kernel(mrf, rule3);
        let db = k.detailed_balance_residual(&pi);
        let stationary = k.stationary_power(300_000, 1e-15);
        let tv = lsl_analysis::tv_distance(&stationary, &pi);
        row(&[
            name.into(),
            variant.into(),
            format!("{db:.3e}"),
            format!("{tv:.3e}"),
        ]);
    }
}

fn main() {
    header(&[
        "E9: LocalMetropolis rule-3 ablation (§4.2 remark)",
        "full chain: residuals ~ 0; ablated: irreversible + wrong stationary law",
    ]);
    header_row("model,variant,detailed_balance_residual,tv(stationary;gibbs)");
    report(
        "coloring:P2,q=3",
        &models::proper_coloring(generators::path(2), 3),
    );
    report(
        "coloring:P3,q=3",
        &models::proper_coloring(generators::path(3), 3),
    );
    report(
        "coloring:C3,q=3",
        &models::proper_coloring(generators::complete(3), 3),
    );
    report(
        "coloring:star3,q=4",
        &models::proper_coloring(generators::star(3), 4),
    );
    report(
        "hardcore:P3,λ=1.5",
        &models::hardcore(generators::path(3), 1.5),
    );
    report("ising:P3,β=0.5", &models::ising(generators::path(3), 0.5));
}
