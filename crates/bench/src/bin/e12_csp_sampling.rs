//! E12 — the weighted-CSP extension of LubyGlauber (Remark after
//! Algorithm 1): strongly-independent-set scheduling over constraint
//! scopes.
//!
//! Dominating sets (single-site-connected solution spaces) are sampled to
//! uniform; maximal independent sets (frozen under single-site moves)
//! demonstrate exact *invariance* of the uniform distribution.
//!
//! Instances are declared as [`JobSpec`] lines (`model=dominating-set`,
//! `model=mis`) and built once through the spec layer; per-replica
//! chains come from the same spec with only the seed (and, for the MIS
//! invariance run, the start) varied.

use lsl_analysis::EmpiricalDistribution;
use lsl_bench::{f, header, header_row, row, scaled};
use lsl_core::spec::{BuiltModel, JobSpec};
use lsl_local::rng::Xoshiro256pp;
use lsl_mrf::gibbs::encode_config;
use rand::RngExt;

fn tv_to_uniform(emp: &EmpiricalDistribution, sols: &[(Vec<u32>, f64)]) -> f64 {
    let target = 1.0 / sols.len() as f64;
    let mut tv: f64 = sols
        .iter()
        .map(|(s, _)| (emp.frequency(encode_config(s, 2)) - target).abs())
        .sum();
    // Mass outside the solution set (should be zero).
    let on_solutions: f64 = sols
        .iter()
        .map(|(s, _)| emp.frequency(encode_config(s, 2)))
        .sum();
    tv += 1.0 - on_solutions;
    0.5 * tv
}

fn main() {
    header(&[
        "E12: weighted local CSP sampling via LubyGlauber (Alg 1 remark)",
        "dominating sets: convergence to uniform; MIS: exact invariance",
    ]);
    header_row("experiment,instance,solutions,steps,replicas,tv_to_uniform,all_feasible");

    let reps = scaled(20_000u64, 3000);
    // Dominating sets on small paths and cycles.
    for (name, graph) in [
        ("path4", "path:4"),
        ("path5", "path:5"),
        ("cycle5", "cycle:5"),
    ] {
        let base: JobSpec = format!("graph={graph} model=dominating-set")
            .parse()
            .expect("a valid E12 spec");
        let model = base.build_model();
        let csp = match &model {
            BuiltModel::Csp { csp, .. } => csp.clone(),
            BuiltModel::Mrf(_) => unreachable!("dominating-set is a CSP"),
        };
        let sols = csp.enumerate();
        let steps = 80;
        let mut emp = EmpiricalDistribution::new();
        let mut feasible = true;
        for rep in 0..reps {
            let mut spec = base.clone();
            spec.seed = Some(17_000 + rep);
            let mut chain = spec
                .sampler_builder(&model)
                .build()
                .expect("feasible dominating-set start");
            chain.run(steps);
            feasible &= csp.is_feasible(chain.state());
            emp.record(encode_config(chain.state(), 2));
        }
        row(&[
            "dominating_set".into(),
            name.into(),
            sols.len().to_string(),
            steps.to_string(),
            reps.to_string(),
            f(tv_to_uniform(&emp, &sols)),
            feasible.to_string(),
        ]);
    }

    // MIS invariance: exact-uniform start stays uniform (the spec's
    // canonical greedy start is overridden per replica).
    for (name, graph) in [("cycle5", "cycle:5"), ("path5", "path:5")] {
        let base: JobSpec = format!("graph={graph} model=mis")
            .parse()
            .expect("a valid E12 spec");
        let model = base.build_model();
        let csp = match &model {
            BuiltModel::Csp { csp, .. } => csp.clone(),
            BuiltModel::Mrf(_) => unreachable!("mis is a CSP"),
        };
        let sols = csp.enumerate();
        let steps = 30;
        let mut emp = EmpiricalDistribution::new();
        let mut feasible = true;
        for rep in 0..reps {
            let mut rng = Xoshiro256pp::seed_from(18_000 + rep);
            let pick = rng.random_range(0..sols.len());
            let mut spec = base.clone();
            spec.seed = Some(18_000 + rep);
            let mut chain = spec
                .sampler_builder(&model)
                .start(sols[pick].0.clone())
                .build()
                .expect("exact solutions are feasible starts");
            chain.run(steps);
            feasible &= csp.is_feasible(chain.state());
            emp.record(encode_config(chain.state(), 2));
        }
        row(&[
            "mis_invariance".into(),
            name.into(),
            sols.len().to_string(),
            steps.to_string(),
            reps.to_string(),
            f(tv_to_uniform(&emp, &sols)),
            feasible.to_string(),
        ]);
    }
}
