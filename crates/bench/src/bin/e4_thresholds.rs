//! E4 — the threshold structure of §4.2: where the couplings contract.
//!
//! Series A: the Δ → ∞ limits of the one-step margins as functions of α —
//! the local-coupling margin (13) crosses 0 at α* ≈ 3.634 (root of
//! α = 2e^{1/α} + 1) and the global/ideal margin (26) at 2+√2 ≈ 3.414.
//! Series B: finite-Δ margins at q = ⌈αΔ⌉ + 3, showing convergence to the
//! limits.
//! Series C: the §4.2.1 ideal-coupling expected disagreement crossing 1.

use lsl_analysis::theory;
use lsl_bench::{f, header, header_row, row};

fn main() {
    header(&[
        "E4: coupling-contraction thresholds (Lemma 4.4, Lemma 4.5, §4.2.1)",
        &format!("alpha_star = {:.6} (paper: 3.634...)", theory::alpha_star()),
        &format!(
            "ideal threshold = {:.6} (paper: 2+sqrt2)",
            theory::ideal_threshold()
        ),
    ]);
    header_row("series,alpha,delta,local_margin,global_margin,ideal_disagreement");

    for i in 0..=20 {
        let alpha = 3.0 + i as f64 * 0.05;
        row(&[
            "A:limits".into(),
            f(alpha),
            "inf".into(),
            f(theory::local_margin_limit(alpha)),
            f(theory::global_margin_limit(alpha)),
            f(1.0 - theory::ideal_margin_limit(alpha)),
        ]);
    }

    for delta in [9.0, 20.0, 50.0, 200.0, 1000.0] {
        for alpha in [3.2, theory::ideal_threshold() + 0.05, 3.65, 3.8] {
            let q = (alpha * delta).ceil() + 3.0;
            let ideal = if q > 2.0 * delta {
                f(theory::ideal_coupling_disagreement(q, delta))
            } else {
                "-".into()
            };
            row(&[
                "B:finite".into(),
                f(alpha),
                delta.to_string(),
                f(theory::local_coupling_margin(q, delta)),
                f(theory::global_coupling_margin(q, delta)),
                ideal,
            ]);
        }
    }

    // Series C: locate the empirical crossing of the ideal disagreement
    // at large Δ — should approach 2+√2 from above.
    for delta in [50.0, 500.0, 5000.0] {
        let crossing = theory::bisect(
            |alpha| theory::ideal_coupling_disagreement(alpha * delta, delta) - 1.0,
            2.5,
            5.0,
            1e-10,
        );
        row(&[
            "C:crossing".into(),
            f(crossing),
            delta.to_string(),
            "-".into(),
            "-".into(),
            "1.0".into(),
        ]);
    }
}
