//! E1 — Theorem 1.1 / 3.2: LubyGlauber mixes in O(Δ/(1−α) · log(n/ε)).
//!
//! Measured as grand-coupling coalescence rounds (an upper-bound surrogate
//! for τ(ε) via the coupling lemma) for proper q-colorings with q = ⌈αΔ⌉,
//! α = 2.5 (Dobrushin satisfied: q > 2Δ).
//!
//! Series A: rounds vs Δ at fixed n — expect ~linear growth in Δ.
//! Series B: rounds vs n at fixed Δ — expect ~logarithmic growth.
//! The `theory` column is the explicit Theorem 3.2 budget.
//!
//! Workloads are declared as [`JobSpec`] lines (the `lsl` CLI's format)
//! and run through the spec layer — the experiment is its spec string.

use lsl_analysis::theory;
use lsl_bench::{coalescence_output, f, header, header_row, row, scaled};
use lsl_core::spec::JobSpec;

fn measure(n: usize, delta: usize, q: usize, trials: usize, seed: u64) -> (f64, f64, usize) {
    // The coalescence job runs grand couplings as coupled replica sets
    // on the step engine: each round's shared randomness is computed
    // once for all copies.
    let spec: JobSpec = format!(
        "graph=random-regular:n={n},d={delta} model=coloring:q={q} \
         algorithm=luby-glauber seed={seed} job=coalescence:trials={trials},max-rounds=2000000"
    )
    .parse()
    .expect("a valid E1 spec");
    let result = spec.run().expect("valid LubyGlauber configuration");
    coalescence_output(&result)
}

fn main() {
    let trials = scaled(5usize, 2);
    header(&[
        "E1: LubyGlauber coalescence rounds (Thm 1.1 / Thm 3.2)",
        "q = ceil(2.5 Δ); coalescence of a grand coupling from adversarial starts",
        "claim: rounds grow ~linearly in Δ (fixed n) and ~log in n (fixed Δ)",
    ]);
    header_row("series,delta,n,q,mean_rounds,se,timeouts,theory_bound");

    let n_fixed = scaled(256usize, 64);
    for delta in [4usize, 6, 8, 12, 16] {
        let q = (5 * delta).div_ceil(2);
        let alpha = delta as f64 / (q - delta) as f64;
        let bound =
            theory::luby_glauber_mixing_bound(n_fixed, 0.01, alpha, theory::luby_gamma(delta));
        let (mean, se, timeouts) = measure(n_fixed, delta, q, trials, 100 + delta as u64);
        row(&[
            "A:vs_delta".into(),
            delta.to_string(),
            n_fixed.to_string(),
            q.to_string(),
            f(mean),
            f(se),
            timeouts.to_string(),
            bound.to_string(),
        ]);
    }

    let delta_fixed = 6usize;
    let q = 15;
    for n in scaled(vec![64usize, 128, 256, 512, 1024], vec![64, 128]) {
        let alpha = delta_fixed as f64 / (q - delta_fixed) as f64;
        let bound =
            theory::luby_glauber_mixing_bound(n, 0.01, alpha, theory::luby_gamma(delta_fixed));
        let (mean, se, timeouts) = measure(n, delta_fixed, q, trials, 200 + n as u64);
        row(&[
            "B:vs_n".into(),
            delta_fixed.to_string(),
            n.to_string(),
            q.to_string(),
            f(mean),
            f(se),
            timeouts.to_string(),
            bound.to_string(),
        ]);
    }
}
