//! E2 — Theorem 1.2 / 4.2: LocalMetropolis mixes in O(log(n/ε)) rounds
//! *independent of Δ* once q ≥ αΔ with α > 2+√2 (Δ ≥ 9).
//!
//! Series A: coalescence rounds vs Δ at fixed n for q = ⌈3.5Δ⌉ — expect a
//! flat curve for LocalMetropolis and a ~linear one for LubyGlauber on the
//! *same* instances (the crossover that motivates Algorithm 2).
//! Series B: rounds vs n at fixed Δ — expect logarithmic growth.

use lsl_bench::{f, header, header_row, row, scaled};
use lsl_core::sampler::{Algorithm, CoalescenceReport, Sampler};
use lsl_graph::generators;
use lsl_mrf::models;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Grand-coupling coalescence of `algorithm` on `mrf` via the facade's
/// job verb (coupled replica batches on the step engine).
fn coalesce(
    mrf: &lsl_mrf::Mrf,
    algorithm: Algorithm,
    trials: usize,
    max_steps: usize,
    seed: u64,
) -> CoalescenceReport {
    Sampler::for_mrf(mrf)
        .algorithm(algorithm)
        .seed(seed)
        .coalescence(trials, max_steps)
        .expect("valid chain configuration")
}

fn main() {
    let trials = scaled(5usize, 2);
    header(&[
        "E2: LocalMetropolis coalescence rounds (Thm 1.2 / Thm 4.2)",
        "q = ceil(3.5 Δ) > (2+sqrt2) Δ; grand-coupling coalescence",
        "claim: LM rounds flat in Δ and ~log in n; LubyGlauber grows ~Δ",
    ]);
    header_row("series,chain,delta,n,q,mean_rounds,se,timeouts");

    let n_fixed = scaled(256usize, 64);
    for delta in [4usize, 6, 9, 12, 16, 24] {
        let q = (7 * delta).div_ceil(2);
        let mut rng = StdRng::seed_from_u64(300 + delta as u64);
        let g = generators::random_regular(n_fixed, delta, &mut rng);
        let mrf = models::proper_coloring(g, q);
        let lm = coalesce(
            &mrf,
            Algorithm::LocalMetropolis,
            trials,
            500_000,
            71 + delta as u64,
        );
        row(&[
            "A:vs_delta".into(),
            "LocalMetropolis".into(),
            delta.to_string(),
            n_fixed.to_string(),
            q.to_string(),
            f(lm.summary.mean),
            f(lm.summary.std_error),
            lm.timeouts.to_string(),
        ]);
        let lg = coalesce(
            &mrf,
            Algorithm::LubyGlauber,
            trials,
            2_000_000,
            72 + delta as u64,
        );
        row(&[
            "A:vs_delta".into(),
            "LubyGlauber".into(),
            delta.to_string(),
            n_fixed.to_string(),
            q.to_string(),
            f(lg.summary.mean),
            f(lg.summary.std_error),
            lg.timeouts.to_string(),
        ]);
    }

    let delta_fixed = 9usize;
    let q = 32;
    for n in scaled(vec![64usize, 128, 256, 512, 1024], vec![64, 128]) {
        let mut rng = StdRng::seed_from_u64(400 + n as u64);
        let g = generators::random_regular(n, delta_fixed, &mut rng);
        let mrf = models::proper_coloring(g, q);
        let s = coalesce(
            &mrf,
            Algorithm::LocalMetropolis,
            trials,
            500_000,
            73 + n as u64,
        );
        row(&[
            "B:vs_n".into(),
            "LocalMetropolis".into(),
            delta_fixed.to_string(),
            n.to_string(),
            q.to_string(),
            f(s.summary.mean),
            f(s.summary.std_error),
            s.timeouts.to_string(),
        ]);
    }
}
