//! E2 — Theorem 1.2 / 4.2: LocalMetropolis mixes in O(log(n/ε)) rounds
//! *independent of Δ* once q ≥ αΔ with α > 2+√2 (Δ ≥ 9).
//!
//! Series A: coalescence rounds vs Δ at fixed n for q = ⌈3.5Δ⌉ — expect a
//! flat curve for LocalMetropolis and a ~linear one for LubyGlauber on the
//! *same* instances (the crossover that motivates Algorithm 2).
//! Series B: rounds vs n at fixed Δ — expect logarithmic growth.
//!
//! Workloads are declared as [`JobSpec`] lines; both chains of series A
//! share one spec modulo `algorithm=`, and the spec layer's
//! deterministic graph builds guarantee they sample the *same* random
//! regular instance (equal `graph-seed` ⇒ bit-identical graph).

use lsl_bench::{coalescence_output, f, header, header_row, row, scaled};
use lsl_core::spec::JobSpec;

/// Grand-coupling coalescence declared as a spec line (coupled replica
/// batches on the step engine).
fn coalesce(
    graph: &str,
    graph_seed: u64,
    q: usize,
    algorithm: &str,
    trials: usize,
    max_rounds: usize,
    seed: u64,
) -> (f64, f64, usize) {
    let spec: JobSpec = format!(
        "graph={graph} model=coloring:q={q} algorithm={algorithm} seed={seed} \
         graph-seed={graph_seed} job=coalescence:trials={trials},max-rounds={max_rounds}"
    )
    .parse()
    .expect("a valid E2 spec");
    let result = spec.run().expect("valid chain configuration");
    coalescence_output(&result)
}

fn main() {
    let trials = scaled(5usize, 2);
    header(&[
        "E2: LocalMetropolis coalescence rounds (Thm 1.2 / Thm 4.2)",
        "q = ceil(3.5 Δ) > (2+sqrt2) Δ; grand-coupling coalescence",
        "claim: LM rounds flat in Δ and ~log in n; LubyGlauber grows ~Δ",
    ]);
    header_row("series,chain,delta,n,q,mean_rounds,se,timeouts");

    let n_fixed = scaled(256usize, 64);
    for delta in [4usize, 6, 9, 12, 16, 24] {
        let q = (7 * delta).div_ceil(2);
        let graph = format!("random-regular:n={n_fixed},d={delta}");
        let graph_seed = 300 + delta as u64;
        let (mean, se, timeouts) = coalesce(
            &graph,
            graph_seed,
            q,
            "local-metropolis",
            trials,
            500_000,
            71 + delta as u64,
        );
        row(&[
            "A:vs_delta".into(),
            "LocalMetropolis".into(),
            delta.to_string(),
            n_fixed.to_string(),
            q.to_string(),
            f(mean),
            f(se),
            timeouts.to_string(),
        ]);
        let (mean, se, timeouts) = coalesce(
            &graph,
            graph_seed,
            q,
            "luby-glauber",
            trials,
            2_000_000,
            72 + delta as u64,
        );
        row(&[
            "A:vs_delta".into(),
            "LubyGlauber".into(),
            delta.to_string(),
            n_fixed.to_string(),
            q.to_string(),
            f(mean),
            f(se),
            timeouts.to_string(),
        ]);
    }

    let delta_fixed = 9usize;
    let q = 32;
    for n in scaled(vec![64usize, 128, 256, 512, 1024], vec![64, 128]) {
        let (mean, se, timeouts) = coalesce(
            &format!("random-regular:n={n},d={delta_fixed}"),
            400 + n as u64,
            q,
            "local-metropolis",
            trials,
            500_000,
            73 + n as u64,
        );
        row(&[
            "B:vs_n".into(),
            "LocalMetropolis".into(),
            delta_fixed.to_string(),
            n.to_string(),
            q.to_string(),
            f(mean),
            f(se),
            timeouts.to_string(),
        ]);
    }
}
