//! E5 — Theorem 5.1: sampling proper 3-colorings of a path needs
//! Ω(log n) rounds.
//!
//! Series A: the exact exponential-correlation curve (eq. 28):
//! `max dTV(µ_v(·|σ_u), µ_v(·|σ'_u))` vs distance, with the fitted decay
//! rate η (for q = 3 on a path, η = 1/2 exactly).
//! Series B: the pair independence defect of the Gibbs law vs distance —
//! positive at every distance, while any t-round protocol has defect 0
//! beyond distance 2t.
//! Series C: truncated LOCAL samplers (LubyGlauber program run t rounds):
//! empirical TV of the pair (σ_0, σ_d) against the exact Gibbs pair law —
//! stuck above the defect floor until t ≈ d/2, then collapsing.

use lsl_bench::{f, header, header_row, row, scaled};
use lsl_graph::VertexId;
use lsl_local::runtime::Simulator;
use lsl_lowerbound::path_lb::{decay_curve, fit_eta, independence_defect, pair_joint};
use lsl_mrf::models;

fn main() {
    header(&[
        "E5: path-coloring lower bound (Thm 5.1)",
        "q = 3 colorings of a path; exact transfer-matrix correlations",
    ]);
    let n = 64;
    let mrf = models::proper_coloring(lsl_graph::generators::path(n), 3);

    header_row("series,distance_or_t,value,extra");
    let distances = [1u32, 2, 3, 4, 6, 8, 10, 12, 16, 20];
    let curve = decay_curve(&mrf, &distances, 0.05);
    for p in &curve {
        row(&[
            "A:influence".into(),
            p.distance.to_string(),
            format!("{:.6e}", p.influence),
            "-".into(),
        ]);
    }
    let eta = fit_eta(&curve).unwrap_or(f64::NAN);
    row(&[
        "A:eta_fit".into(),
        "-".into(),
        f(eta),
        "paper: η = 1/2".into(),
    ]);

    for &d in &distances {
        let joint = pair_joint(&mrf, VertexId(0), VertexId(d));
        row(&[
            "B:defect".into(),
            d.to_string(),
            format!("{:.6e}", independence_defect(&joint, 3)),
            "-".into(),
        ]);
    }

    // Series C: truncated LOCAL sampler pair-law error at distance d.
    // While 2t < d the protocol's pair is independent, so its TV from the
    // Gibbs pair is bounded below by (roughly) the independence defect at
    // d; once t ≳ d/2 the sampler can correlate the pair and the error
    // collapses to the sampling-noise floor.
    let runs = scaled(20_000u64, 3_000);
    for d in [2u32, 4] {
        let exact_pair = pair_joint(&mrf, VertexId(0), VertexId(d));
        let defect = independence_defect(&exact_pair, 3);
        for t in [0usize, 1, 2, 3, 4, 6, 8, 12, 16] {
            let mut counts = [0usize; 9];
            for rep in 0..runs {
                let sim = Simulator::new(mrf.graph_arc(), 9000 + 31 * d as u64 + rep);
                let run = sim.run_with::<lsl_core::programs::LubyGlauberProgram>(t, &mrf);
                let a = run.outputs[0] as usize;
                let b = run.outputs[d as usize] as usize;
                counts[a * 3 + b] += 1;
            }
            let tv = 0.5
                * exact_pair
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| (counts[i] as f64 / runs as f64 - p).abs())
                    .sum::<f64>();
            row(&[
                format!("C:pair_tv_d{d}"),
                t.to_string(),
                f(tv),
                format!(
                    "defect_floor={:.4}; dependence possible once 2t>={d}",
                    defect
                ),
            ]);
        }
    }
}
