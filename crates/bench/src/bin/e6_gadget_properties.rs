//! E6 — Proposition 5.3: the random bipartite gadget behaves as a
//! two-phase system.
//!
//! For sampled gadgets we report, *exactly* (by enumerating all hardcore
//! configurations of the gadget): connectivity and diameter, the phase
//! balance Pr[Y = ±] (paper: (1±δ)/2), the tie mass, and the
//! phase-conditioned terminal statistics — the mean occupation of W⁺/W⁻
//! given each phase (paper: i.i.d.-like Bernoulli(q⁺)/Bernoulli(q⁻)) and
//! the maximum pairwise covariance between terminals given the phase
//! (near 0 = "phase-correlated almost independence").

use lsl_bench::{f, header, header_row, row, scaled};
use lsl_graph::traversal;
use lsl_lowerbound::gadget::{Gadget, GadgetParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct PhaseReport {
    prob: f64,
    mean_w_plus: f64,
    mean_w_minus: f64,
    max_cov: f64,
}

/// Exact phase-conditioned terminal statistics by full enumeration.
fn analyze(gadget: &Gadget, lambda: f64) -> (f64, [PhaseReport; 2]) {
    let side = gadget.params().side;
    let t = gadget.params().terminals;
    let nv = 2 * side;
    assert!(nv <= 26, "enumeration guard");
    let g = gadget.graph();
    let edge_masks: Vec<u64> = g
        .edges()
        .map(|(_, u, v)| (1u64 << u.index()) | (1u64 << v.index()))
        .collect();
    // Terminal index lists.
    let w_plus: Vec<usize> = (0..t).collect();
    let w_minus: Vec<usize> = (side..side + t).collect();
    let all_terms: Vec<usize> = w_plus.iter().chain(&w_minus).copied().collect();
    let nt = all_terms.len();
    // Accumulators per phase (0 = plus, 1 = minus): z, sum occ per terminal,
    // sum pairwise products.
    let mut z = [0.0f64; 3];
    let mut occ = vec![[0.0f64; 2]; nt];
    let mut pair = vec![vec![[0.0f64; 2]; nt]; nt];
    for mask in 0u64..(1 << nv) {
        if edge_masks.iter().any(|&em| mask & em == em) {
            continue;
        }
        let w = lambda.powi(mask.count_ones() as i32);
        let plus = (mask & ((1u64 << side) - 1)).count_ones();
        let minus = (mask >> side).count_ones();
        let phase = match plus.cmp(&minus) {
            std::cmp::Ordering::Greater => 0usize,
            std::cmp::Ordering::Less => 1,
            std::cmp::Ordering::Equal => 2,
        };
        z[phase] += w;
        if phase == 2 {
            continue;
        }
        for (i, &vi) in all_terms.iter().enumerate() {
            if (mask >> vi) & 1 == 1 {
                occ[i][phase] += w;
                for (j, &vj) in all_terms.iter().enumerate().skip(i + 1) {
                    if (mask >> vj) & 1 == 1 {
                        pair[i][j][phase] += w;
                    }
                }
            }
        }
    }
    let total = z[0] + z[1] + z[2];
    let mut reports = Vec::new();
    for phase in 0..2 {
        let zp = z[phase];
        let probs: Vec<f64> = (0..nt).map(|i| occ[i][phase] / zp).collect();
        let mean_w_plus = probs[..t].iter().sum::<f64>() / t as f64;
        let mean_w_minus = probs[t..].iter().sum::<f64>() / t as f64;
        let mut max_cov = 0.0f64;
        for i in 0..nt {
            for j in (i + 1)..nt {
                let cov = pair[i][j][phase] / zp - probs[i] * probs[j];
                max_cov = max_cov.max(cov.abs());
            }
        }
        reports.push(PhaseReport {
            prob: zp / total,
            mean_w_plus,
            mean_w_minus,
            max_cov,
        });
    }
    let [a, b] = <[PhaseReport; 2]>::try_from(reports)
        .ok()
        .expect("two phases");
    (z[2] / total, [a, b])
}

fn main() {
    header(&[
        "E6: gadget properties (Prop 5.3)",
        "exact enumeration of hardcore configurations of sampled gadgets",
        "claims: connected, small diameter, balanced phases, phase-conditioned",
        "terminal occupations ~ product Bernoulli (q+ on W+ / q- on W- given +)",
    ]);
    header_row("side,terminals,delta,lambda,seed,connected,diam,P[+],P[-],P[tie],E[W+|+],E[W-|+],maxcov|+,maxcov|-");
    let sides = scaled(vec![8usize, 10, 12], vec![8]);
    for side in sides {
        for seed in 0..3u64 {
            let params = GadgetParams {
                side,
                terminals: 4,
                delta: 4,
            };
            let lambda = 10.0;
            let mut rng = StdRng::seed_from_u64(seed);
            let gadget = Gadget::sample(params, &mut rng);
            let connected = traversal::is_connected(gadget.graph());
            let diam = traversal::diameter(gadget.graph()).map_or(-1i64, |d| d as i64);
            let (tie, [p, m]) = analyze(&gadget, lambda);
            row(&[
                side.to_string(),
                "4".into(),
                "4".into(),
                f(lambda),
                seed.to_string(),
                connected.to_string(),
                diam.to_string(),
                f(p.prob),
                f(m.prob),
                f(tie),
                f(p.mean_w_plus),
                f(p.mean_w_minus),
                format!("{:.4e}", p.max_cov),
                format!("{:.4e}", m.max_cov),
            ]);
        }
    }
}
