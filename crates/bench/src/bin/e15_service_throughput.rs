//! E15 — the sampling service under load: jobs/sec vs worker threads.
//!
//! The ROADMAP's north star is a sampling *service*; this experiment
//! measures the serving layer itself. A fixed batch of [`JobSpec`]
//! queries — mixed workloads over one shared model (cache hits) and
//! per-seed random graphs (cache misses) — is submitted to a
//! [`Service`] at increasing worker counts, and we record end-to-end
//! jobs/sec plus the model-cache hit footprint. Results are
//! bit-identical at every worker count (asserted each sweep row via
//! result fingerprints), so the sweep isolates pure serving cost.
//!
//! Results are printed as TSV and recorded to `BENCH_service.json` at
//! the workspace root. `--tiny` (or `quick` / `LSL_BENCH_QUICK=1`)
//! shrinks the workload for smoke runs and skips the JSON write.

use lsl_bench::{header, header_row, row};
use lsl_core::service::Service;
use lsl_core::spec::{JobResult, JobSpec};
use std::time::Instant;

struct Row {
    threads: usize,
    jobs: usize,
    distinct_models: usize,
    secs: f64,
    jobs_per_sec: f64,
    speedup_vs_1: f64,
}

/// The query batch: `shared` jobs on one cached model (distinct seeds)
/// plus `fresh` jobs each building its own random graph.
fn batch(shared: usize, fresh: usize, side: usize, rounds: usize) -> Vec<JobSpec> {
    let mut specs = Vec::with_capacity(shared + fresh);
    for seed in 0..shared {
        specs.push(
            format!(
                "graph=torus:{side}x{side} model=coloring:q=16 seed={seed} \
                 job=run:rounds={rounds}"
            )
            .parse()
            .expect("a valid shared-model spec"),
        );
    }
    for seed in 0..fresh {
        specs.push(
            format!(
                "graph=gnp:n={},p=0.01 model=coloring:q=24 seed={seed} \
                 job=run:rounds={rounds}",
                side * side
            )
            .parse()
            .expect("a valid fresh-model spec"),
        );
    }
    specs
}

/// Serves the whole batch on `threads` workers; returns the wall clock,
/// the cache footprint, and the results (submission order).
fn serve(specs: &[JobSpec], threads: usize) -> (f64, usize, Vec<JobResult>) {
    let service = Service::new(threads);
    let t = Instant::now();
    let handles: Vec<_> = specs.iter().cloned().map(|s| service.submit(s)).collect();
    let results: Vec<JobResult> = handles
        .into_iter()
        .map(|h| h.wait().expect("a valid E15 spec"))
        .collect();
    let secs = t.elapsed().as_secs_f64();
    (secs, service.cached_models(), results)
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny" || a == "tiny" || a == "quick")
        || std::env::var("LSL_BENCH_QUICK").is_ok_and(|v| v != "0");
    let (side, rounds, shared, fresh, thread_counts): (usize, usize, usize, usize, Vec<usize>) =
        if tiny {
            (24, 10, 8, 4, vec![1, 4])
        } else {
            (64, 40, 48, 16, vec![1, 2, 4, 8])
        };

    header(&[
        "E15: sampling-service throughput (jobs/sec vs worker threads)",
        "mixed batch: cache-shared torus jobs + per-seed G(n,p) jobs;",
        "results are bit-identical at every worker count (asserted)",
    ]);
    header_row("threads,jobs,distinct_models,secs,jobs_per_sec,speedup_vs_1");

    let specs = batch(shared, fresh, side, rounds);
    let mut rows: Vec<Row> = Vec::new();
    let mut reference: Option<Vec<JobResult>> = None;
    let mut base_rate = 0.0;
    for &threads in &thread_counts {
        let (secs, distinct_models, results) = serve(&specs, threads);
        match &reference {
            None => reference = Some(results),
            Some(expected) => assert_eq!(
                expected, &results,
                "worker count changed a result — determinism violated"
            ),
        }
        let jobs_per_sec = specs.len() as f64 / secs;
        if threads == thread_counts[0] {
            base_rate = jobs_per_sec;
        }
        rows.push(Row {
            threads,
            jobs: specs.len(),
            distinct_models,
            secs,
            jobs_per_sec,
            speedup_vs_1: jobs_per_sec / base_rate,
        });
    }

    for r in &rows {
        row(&[
            r.threads.to_string(),
            r.jobs.to_string(),
            r.distinct_models.to_string(),
            format!("{:.4}", r.secs),
            format!("{:.1}", r.jobs_per_sec),
            format!("{:.2}", r.speedup_vs_1),
        ]);
    }

    // Record the datapoint (hand-rolled JSON: no serde in the tree).
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"jobs\": {}, \"distinct_models\": {}, \
                 \"secs\": {:.6}, \"jobs_per_sec\": {:.1}, \"speedup_vs_1\": {:.2}}}",
                r.threads, r.jobs, r.distinct_models, r.secs, r.jobs_per_sec, r.speedup_vs_1,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"service_throughput\",\n  \"workload\": \"mixed JobSpec batch \
         (shared torus coloring + per-seed gnp), worker-thread sweep\",\n  \"meta\": {},\n  \
         \"tiny\": {tiny},\n  \"rows\": [\n{}\n  ]\n}}\n",
        lsl_bench::meta_json(),
        json_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    if tiny {
        // Smoke runs must not clobber the recorded full-workload datapoint.
        println!("# tiny run: not recording {path}");
    } else if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not record {path}: {e}");
    } else {
        println!("# recorded {path}");
    }
}
