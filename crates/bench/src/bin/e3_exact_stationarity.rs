//! E3 — Proposition 3.1 and Theorem 4.1, verified *exactly*.
//!
//! For each small model we construct the exact transition kernels of the
//! Glauber, LubyGlauber (Luby-step distribution by rank enumeration), and
//! LocalMetropolis chains, and report: the stationarity residual
//! `|µP − µ|_∞`, the detailed-balance residual, the spectral gap on the
//! feasible support, and the exact mixing time τ(0.01) from feasible
//! starts. Residuals at 1e-12-scale are floating-point zero: the claims
//! hold exactly.

use lsl_bench::{f, header, header_row, row};
use lsl_core::kernel::{
    glauber_kernel, local_metropolis_kernel, luby_glauber_kernel, luby_set_distribution,
};
use lsl_graph::generators;
use lsl_mrf::gibbs::Enumeration;
use lsl_mrf::models;
use lsl_mrf::Mrf;

fn report(name: &str, mrf: &Mrf) {
    let exact = Enumeration::new(mrf).expect("small model");
    let pi = exact.distribution();
    let feasible: Vec<usize> = exact.feasible().map(|(i, _)| i).collect();
    let kernels = [
        ("Glauber", glauber_kernel(mrf)),
        (
            "LubyGlauber",
            luby_glauber_kernel(mrf, &luby_set_distribution(mrf.graph())),
        ),
        ("LocalMetropolis", local_metropolis_kernel(mrf, true)),
    ];
    for (chain, k) in kernels {
        let stat = k.stationarity_residual(&pi);
        let db = k.detailed_balance_residual(&pi);
        let gap = k.spectral_gap(&pi, 3000).unwrap_or(f64::NAN);
        let tau = k
            .mixing_time(&pi, 0.01, 20_000, Some(&feasible))
            .map_or("-".into(), |t| t.to_string());
        row(&[
            name.into(),
            chain.into(),
            format!("{:.2e}", stat),
            format!("{:.2e}", db),
            f(gap),
            tau,
        ]);
    }
}

fn main() {
    header(&[
        "E3: exact stationarity & reversibility (Prop 3.1, Thm 4.1)",
        "kernels constructed exactly; residuals should be ~1e-15 (float zero)",
    ]);
    header_row(
        "model,chain,stationarity_residual,detailed_balance_residual,spectral_gap,tau(0.01)",
    );
    report(
        "coloring:P3,q=3",
        &models::proper_coloring(generators::path(3), 3),
    );
    report(
        "coloring:C4,q=4",
        &models::proper_coloring(generators::cycle(4), 4),
    );
    report(
        "coloring:star3,q=4",
        &models::proper_coloring(generators::star(3), 4),
    );
    report(
        "hardcore:P3,λ=1.5",
        &models::hardcore(generators::path(3), 1.5),
    );
    report(
        "hardcore:C4,λ=0.8",
        &models::hardcore(generators::cycle(4), 0.8),
    );
    report("ising:P3,β=0.5", &models::ising(generators::path(3), 0.5));
    report(
        "potts:C3,q=3,β=0.3",
        &models::potts(generators::cycle(3), 3, 0.3),
    );
    report(
        "listcol:P3",
        &models::list_coloring(
            generators::path(3),
            4,
            &[vec![0, 1, 2], vec![1, 2, 3], vec![0, 2, 3]],
        ),
    );
}
