//! E18 — text vs binary frames: codec throughput and bytes on wire.
//!
//! PR 9 added a negotiated binary frame codec (`hello codec=binary`)
//! with bit-packed full-state delivery (`job=sample`, `job=stream`).
//! This experiment measures what the codec choice buys, on the two
//! payload shapes that matter:
//!
//! * **metric results** — a `finished` event carrying a `run` output
//!   (the common case: a handful of scalars);
//! * **full states** — a `state` event carrying a 256×256 torus
//!   configuration (the streaming case the binary codec exists for:
//!   ~64 KB byte-packed at q=16, ~8 KB bit-packed for Ising).
//!
//! For each payload × codec, the micro rows measure encode+decode
//! round trips per second and bytes per frame (text counts the line
//! plus its `\n`; binary counts the 4-byte length prefix plus
//! payload). The live rows stream a real `job=stream:every=1` session
//! over loopback TCP under each codec — both sessions' decoded state
//! sequences are asserted identical before timing is trusted.
//!
//! Results are printed as TSV and recorded to `BENCH_codec.json` at
//! the workspace root (CPU count in the meta block — this container
//! exposes few CPUs, so live rows measure protocol overhead, not
//! parallel scaling). `--tiny` / `quick` / `LSL_BENCH_QUICK=1`
//! shrinks the workload and skips the JSON write.

use lsl_bench::{header, header_row, row};
use lsl_core::codec::{self, Codec, StateBlob};
use lsl_core::net::{Client, Server};
use lsl_core::proto::ServerFrame;
use lsl_core::service::JobEvent;
use lsl_core::spec::JobSpec;
use std::time::Instant;

struct Row {
    case: String,
    codec: &'static str,
    frames_per_sec: f64,
    bytes_per_frame: usize,
    secs: f64,
}

/// Best-of-`repeats` wall-clock of `f`.
fn best_secs(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Text wire size of a server frame: the printed line plus `\n`.
fn text_bytes(frame: &ServerFrame) -> usize {
    frame.to_string().len() + 1
}

/// Binary wire size of a server frame: length prefix plus payload.
fn binary_bytes(frame: &ServerFrame) -> usize {
    4 + codec::encode_server(frame).len()
}

/// Micro rows: encode+decode round trips of `frame` under both codecs.
fn codec_micro(case: &str, frame: &ServerFrame, iters: usize, repeats: usize, rows: &mut Vec<Row>) {
    let text = best_secs(repeats, || {
        for _ in 0..iters {
            let printed = frame.to_string();
            let reparsed: ServerFrame = printed.parse().expect("canonical frame");
            assert!(matches!(reparsed, ServerFrame::Event { .. }));
        }
    });
    rows.push(Row {
        case: case.into(),
        codec: "text",
        frames_per_sec: iters as f64 / text,
        bytes_per_frame: text_bytes(frame),
        secs: text,
    });
    let binary = best_secs(repeats, || {
        for _ in 0..iters {
            let payload = codec::encode_server(frame);
            let decoded = codec::decode_server(&payload).expect("canonical frame");
            assert!(matches!(decoded, ServerFrame::Event { .. }));
        }
    });
    rows.push(Row {
        case: case.into(),
        codec: "binary",
        frames_per_sec: iters as f64 / binary,
        bytes_per_frame: binary_bytes(frame),
        secs: binary,
    });
}

/// Live row: streams `line` over loopback under `codec` and returns
/// (secs, delivered states).
fn stream_live(server: &Server, line: &str, codec: Codec) -> (f64, Vec<(u64, StateBlob)>) {
    let t = Instant::now();
    let mut client = Client::connect_with(server.local_addr(), codec).expect("connect");
    client.submit(line).expect("submit");
    let outcome = client
        .drain()
        .expect("drain")
        .into_iter()
        .next()
        .expect("one line");
    assert!(outcome.is_ok(), "stream job failed");
    let secs = t.elapsed().as_secs_f64();
    (secs, outcome.states.into_iter().next().expect("one member"))
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny" || a == "tiny" || a == "quick")
        || std::env::var("LSL_BENCH_QUICK").is_ok_and(|v| v != "0");
    let (side, stream_rounds, iters, state_iters, repeats) = if tiny {
        (64, 4, 2_000, 50, 2)
    } else {
        (256, 16, 50_000, 400, 3)
    };

    header(&[
        "E18: wire codec (text lines vs negotiated binary frames)",
        "micro rows: encode+decode round trips of one server frame;",
        "live rows: a real job=stream:every=1 session over loopback TCP,",
        "state sequences asserted identical across codecs first",
    ]);
    header_row("case,codec,frames_per_sec,bytes_per_frame,secs");

    let mut rows: Vec<Row> = Vec::new();

    // Payload 1: a metric result (the common finished event).
    let result_line =
        format!("graph=torus:{side}x{side} model=coloring:q=16 seed=1 job=run:rounds=4");
    let result = result_line
        .parse::<JobSpec>()
        .unwrap()
        .run()
        .expect("a valid E18 spec");
    let result_frame = ServerFrame::Event {
        id: 1,
        index: 0,
        event: JobEvent::Finished(result),
    };
    codec_micro("result-frame", &result_frame, iters, repeats, &mut rows);

    // Payload 2: full states — byte-packed (q=16 coloring) and
    // bit-packed (Ising) configurations of the full torus.
    for (tag, q) in [("state-q16", 16u32), ("state-ising", 2)] {
        let n = side * side;
        let state: Vec<u32> = (0..n as u32).map(|i| i % q).collect();
        let frame = ServerFrame::Event {
            id: 1,
            index: 0,
            event: JobEvent::State {
                round: 100,
                blob: StateBlob::pack(&state, q as usize),
            },
        };
        codec_micro(
            &format!("{tag}-{side}x{side}"),
            &frame,
            state_iters,
            repeats,
            &mut rows,
        );
    }

    // Live: stream every round of a real chain under each codec.
    // Best-of-repeats: a whole session is short enough that thread
    // spawn and scheduler noise would otherwise dominate the row.
    let stream_line = format!(
        "graph=torus:{side}x{side} model=coloring:q=16 seed=5 \
         job=stream:rounds={stream_rounds},every=1"
    );
    let server = Server::bind("127.0.0.1:0", 2).expect("bind a loopback server");
    let live = |codec| {
        let (mut best_secs, states) = stream_live(&server, &stream_line, codec);
        for _ in 1..repeats {
            let (secs, again) = stream_live(&server, &stream_line, codec);
            assert_eq!(states, again, "a repeated stream diverged");
            best_secs = best_secs.min(secs);
        }
        (best_secs, states)
    };
    let (text_secs, text_states) = live(Codec::Text);
    let (binary_secs, binary_states) = live(Codec::Binary);
    assert_eq!(
        text_states, binary_states,
        "the codec changed a streamed state — wire identity violated"
    );
    let blob_bytes = text_states[0].1.byte_len();
    for (codec, secs) in [("text", text_secs), ("binary", binary_secs)] {
        rows.push(Row {
            case: format!("stream-live-{side}x{side}"),
            codec,
            frames_per_sec: text_states.len() as f64 / secs,
            bytes_per_frame: blob_bytes,
            secs,
        });
    }

    for r in &rows {
        row(&[
            r.case.clone(),
            r.codec.to_string(),
            format!("{:.0}", r.frames_per_sec),
            r.bytes_per_frame.to_string(),
            format!("{:.4}", r.secs),
        ]);
    }

    // Record the datapoint (hand-rolled JSON: no serde in the tree).
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"case\": \"{}\", \"codec\": \"{}\", \"frames_per_sec\": {:.0}, \
                 \"bytes_per_frame\": {}, \"secs\": {:.6}}}",
                r.case, r.codec, r.frames_per_sec, r.bytes_per_frame, r.secs,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"wire_codec\",\n  \"workload\": \"text vs binary frame codec: \
         encode+decode micro rows on result and full-state frames, plus a live \
         job=stream:every=1 loopback session per codec ({side}x{side} torus)\",\n  \
         \"note\": \"state sequences asserted identical across codecs; live rows on a \
         low-CPU container measure protocol overhead, not parallel scaling\",\n  \
         \"meta\": {},\n  \"tiny\": {tiny},\n  \"rows\": [\n{}\n  ]\n}}\n",
        lsl_bench::meta_json(),
        json_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_codec.json");
    if tiny {
        // Smoke runs must not clobber the recorded full-workload datapoint.
        println!("# tiny run: not recording {path}");
    } else if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not record {path}: {e}");
    } else {
        println!("# recorded {path}");
    }
}
