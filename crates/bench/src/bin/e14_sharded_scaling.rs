//! E14 — sharded owner-computes execution: scaling and boundary
//! communication.
//!
//! The paper's LOCAL model charges for states crossing edges; the
//! sharded backend makes that cost measurable. We sweep shard counts
//! and partitioners on the 256×256 torus coloring (the step-engine
//! reference workload) and on G(n,p), reporting throughput plus the
//! per-round boundary traffic (`messages ≤ 2·cut` by construction —
//! one message per boundary vertex per subscribing shard, each cut
//! edge inducing at most two such pairs, i.e. the O(Δ·cut) regime).
//! Trajectories are bit-identical to the sequential backend for every
//! row, so the sweep isolates pure execution cost.
//!
//! Results are printed as TSV and recorded to `BENCH_sharded.json` at
//! the workspace root. `--tiny` (or `quick` / `LSL_BENCH_QUICK=1`)
//! shrinks the workload for smoke runs and skips the JSON write.

use lsl_bench::{header, header_row, row};
use lsl_core::engine::rules::LocalMetropolisRule;
use lsl_core::engine::sharded::ShardedChain;
use lsl_core::engine::SyncChain;
use lsl_graph::partition::Partitioner;
use lsl_graph::Graph;
use lsl_mrf::models;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Row {
    graph: String,
    partitioner: &'static str,
    shards: usize,
    n: usize,
    cut: usize,
    balance: f64,
    rounds: usize,
    secs: f64,
    steps_vertices_per_sec: f64,
    msgs_per_round: f64,
    bytes_per_round: f64,
    changed_per_round: f64,
}

/// Best-of-`repeats` wall-clock of `f`, which runs one measurement block.
fn best_secs(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn sweep(
    label: &str,
    g: Graph,
    q: usize,
    shard_counts: &[usize],
    rounds: usize,
    repeats: usize,
    rows: &mut Vec<Row>,
) {
    let mrf = models::proper_coloring(g, q);
    let n = mrf.num_vertices();

    // Sequential baseline (the bit-identical reference).
    {
        let mut chain = SyncChain::new(&mrf, LocalMetropolisRule::new(), 1);
        chain.run(2); // warm up
        let secs = best_secs(repeats, || chain.run(rounds));
        rows.push(Row {
            graph: label.to_string(),
            partitioner: "none",
            shards: 1,
            n,
            cut: 0,
            balance: 1.0,
            rounds,
            secs,
            steps_vertices_per_sec: rounds as f64 * n as f64 / secs,
            msgs_per_round: 0.0,
            bytes_per_round: 0.0,
            changed_per_round: 0.0,
        });
    }

    for &k in shard_counts {
        for part in Partitioner::ALL {
            let partition = part.partition(mrf.graph(), k);
            let stats = partition.stats(mrf.graph());
            let mut chain = ShardedChain::new(&mrf, LocalMetropolisRule::new(), 1, partition);
            chain.run(2); // warm up
            chain.reset_comm(); // account only the measured rounds
            let secs = best_secs(repeats, || chain.run(rounds));
            let comm = chain.comm();
            let measured = comm.rounds_seen() as f64;
            rows.push(Row {
                graph: label.to_string(),
                partitioner: part.name(),
                shards: k,
                n,
                cut: stats.cut_size,
                balance: stats.balance,
                rounds,
                secs,
                steps_vertices_per_sec: rounds as f64 * n as f64 / secs,
                msgs_per_round: comm.total_messages() as f64 / measured,
                bytes_per_round: comm.total_bytes() as f64 / measured,
                changed_per_round: comm.total_changed() as f64 / measured,
            });
        }
    }
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny" || a == "tiny" || a == "quick")
        || std::env::var("LSL_BENCH_QUICK").is_ok_and(|v| v != "0");
    let (side, gnp_n, rounds, repeats, shard_counts): (usize, usize, usize, usize, Vec<usize>) =
        if tiny {
            (48, 512, 4, 1, vec![2, 4])
        } else {
            (256, 4096, 12, 3, vec![2, 4, 8, 16])
        };

    header(&[
        "E14: sharded owner-computes scaling + boundary messages",
        "messages/round <= 2*cut by construction (O(delta*cut) regime);",
        "trajectories are bit-identical to the sequential backend",
    ]);
    header_row(
        "graph,partitioner,shards,n,cut,balance,rounds,secs,steps_vertices_per_sec,\
         msgs_per_round,bytes_per_round,changed_per_round",
    );

    let mut rows: Vec<Row> = Vec::new();
    sweep(
        &format!("torus{side}x{side}"),
        lsl_graph::generators::torus(side, side),
        16,
        &shard_counts,
        rounds,
        repeats,
        &mut rows,
    );
    {
        // Sparse G(n,p) at mean degree 8, q comfortably in the
        // Theorem 1.2 regime for the realized max degree.
        let mut rng = StdRng::seed_from_u64(14);
        let g = lsl_graph::generators::gnp(gnp_n, 8.0 / gnp_n as f64, &mut rng);
        let q = 4 * g.max_degree().max(1);
        sweep(
            &format!("gnp{gnp_n}"),
            g,
            q,
            &shard_counts,
            rounds,
            repeats,
            &mut rows,
        );
    }

    for r in &rows {
        row(&[
            r.graph.clone(),
            r.partitioner.into(),
            r.shards.to_string(),
            r.n.to_string(),
            r.cut.to_string(),
            format!("{:.3}", r.balance),
            r.rounds.to_string(),
            format!("{:.4}", r.secs),
            format!("{:.3e}", r.steps_vertices_per_sec),
            format!("{:.1}", r.msgs_per_round),
            format!("{:.1}", r.bytes_per_round),
            format!("{:.1}", r.changed_per_round),
        ]);
    }

    // Record the datapoint (hand-rolled JSON: no serde in the tree).
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"graph\": \"{}\", \"partitioner\": \"{}\", \"shards\": {}, \"n\": {}, \
                 \"cut\": {}, \"balance\": {:.3}, \"rounds\": {}, \"secs\": {:.6}, \
                 \"steps_vertices_per_sec\": {:.1}, \"msgs_per_round\": {:.1}, \
                 \"bytes_per_round\": {:.1}, \"changed_per_round\": {:.1}}}",
                r.graph,
                r.partitioner,
                r.shards,
                r.n,
                r.cut,
                r.balance,
                r.rounds,
                r.secs,
                r.steps_vertices_per_sec,
                r.msgs_per_round,
                r.bytes_per_round,
                r.changed_per_round,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"sharded_scaling\",\n  \"workload\": \"LocalMetropolis proper \
         coloring, torus + gnp, shard-count x partitioner sweep\",\n  \"tiny\": {tiny},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sharded.json");
    if tiny {
        // Smoke runs must not clobber the recorded full-workload datapoint.
        println!("# tiny run: not recording {path}");
    } else if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not record {path}: {e}");
    } else {
        println!("# recorded {path}");
    }
}
