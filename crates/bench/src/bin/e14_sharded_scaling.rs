//! E14 — sharded owner-computes execution: scaling and boundary
//! communication.
//!
//! The paper's LOCAL model charges for states crossing edges; the
//! sharded backend makes that cost measurable. We sweep shard counts
//! and partitioners on the 256×256 torus coloring (the step-engine
//! reference workload) and on G(n,p), reporting throughput plus the
//! per-round boundary traffic (`messages ≤ 2·cut` by construction —
//! one message per boundary vertex per subscribing shard, each cut
//! edge inducing at most two such pairs, i.e. the O(Δ·cut) regime).
//! Trajectories are bit-identical to the sequential backend for every
//! row, so the sweep isolates pure execution cost.
//!
//! Every row is one [`JobSpec`] (`backend=sharded:K partitioner=P
//! job=run:rounds=R`); the model is built once per instance through
//! the spec layer and shared across the sweep. The `secs` column is
//! the best end-to-end job wall clock — sampler construction
//! (partitioning, slab setup) *included*, unlike the pre-spec binary
//! which timed only warmed-up stepping — so rows measure what a
//! service pays per query. Flags narrow the sweep via the workload
//! enums' `FromStr` forms:
//!
//! ```text
//! e14_sharded_scaling [--tiny] [--partitioner bfs] [--shards 8]
//! ```
//!
//! Results are printed as TSV and recorded to `BENCH_sharded.json` at
//! the workspace root. `--tiny` (or `quick` / `LSL_BENCH_QUICK=1`)
//! shrinks the workload for smoke runs and skips the JSON write.

use lsl_bench::{header, header_row, row};
use lsl_core::spec::{BuiltModel, CommSummary, JobOutput, JobSpec};
use lsl_graph::partition::Partitioner;

struct Row {
    graph: String,
    partitioner: &'static str,
    shards: usize,
    n: usize,
    cut: usize,
    balance: f64,
    rounds: usize,
    secs: f64,
    steps_vertices_per_sec: f64,
    msgs_per_round: f64,
    bytes_per_round: f64,
    changed_per_round: f64,
}

/// Runs `spec` on the prebuilt model `repeats` times and returns the
/// best wall clock plus the (deterministic) run output.
fn best_run(spec: &JobSpec, model: &BuiltModel, repeats: usize) -> (f64, u64, Option<CommSummary>) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats {
        let result = spec.run_on(model).expect("a valid E14 spec");
        best = best.min(result.elapsed_secs);
        last = Some(result.output);
    }
    match last {
        Some(JobOutput::Run { rounds, comm, .. }) => (best, rounds, comm),
        other => panic!("expected a run output, got {other:?}"),
    }
}

#[allow(clippy::too_many_arguments)]
fn sweep(
    label: &str,
    graph: &str,
    graph_seed: u64,
    q: usize,
    shard_counts: &[usize],
    partitioners: &[Partitioner],
    rounds: usize,
    repeats: usize,
    rows: &mut Vec<Row>,
) {
    let base: JobSpec = format!(
        "graph={graph} model=coloring:q={q} algorithm=local-metropolis \
         seed=1 graph-seed={graph_seed} job=run:rounds={rounds}"
    )
    .parse()
    .expect("a valid E14 base spec");
    let model = base.build_model();
    let mrf = match &model {
        BuiltModel::Mrf(mrf) => mrf.clone(),
        BuiltModel::Csp { .. } => unreachable!("coloring is an MRF"),
    };
    let n = mrf.num_vertices();

    // Sequential baseline (the bit-identical reference).
    {
        let (secs, _, _) = best_run(&base, &model, repeats);
        rows.push(Row {
            graph: label.to_string(),
            partitioner: "none",
            shards: 1,
            n,
            cut: 0,
            balance: 1.0,
            rounds,
            secs,
            steps_vertices_per_sec: rounds as f64 * n as f64 / secs,
            msgs_per_round: 0.0,
            bytes_per_round: 0.0,
            changed_per_round: 0.0,
        });
    }

    for &k in shard_counts {
        for &part in partitioners {
            let partition = part.partition(mrf.graph(), k);
            let stats = partition.stats(mrf.graph());
            let mut spec = base.clone();
            spec.backend = Some(lsl_core::engine::Backend::Sharded { shards: k });
            spec.partitioner = Some(part);
            let (secs, _, comm) = best_run(&spec, &model, repeats);
            let comm = comm.expect("sharded runs record communication");
            let measured = comm.rounds_seen as f64;
            rows.push(Row {
                graph: label.to_string(),
                partitioner: part.name(),
                shards: k,
                n,
                cut: stats.cut_size,
                balance: stats.balance,
                rounds,
                secs,
                steps_vertices_per_sec: rounds as f64 * n as f64 / secs,
                msgs_per_round: comm.total_messages as f64 / measured,
                bytes_per_round: comm.total_bytes as f64 / measured,
                changed_per_round: comm.total_changed as f64 / measured,
            });
        }
    }
}

/// Parses `--partitioner <name>` / `--shards <k>` through the workload
/// enums' `FromStr` impls (the same forms the spec grammar accepts).
fn flag<T: std::str::FromStr>(name: &str) -> Option<T>
where
    T::Err: std::fmt::Display,
{
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == name)?;
    let value = args
        .get(i + 1)
        .unwrap_or_else(|| panic!("{name} needs a value"));
    match value.parse::<T>() {
        Ok(v) => Some(v),
        Err(e) => panic!("{name} {value:?}: {e}"),
    }
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny" || a == "tiny" || a == "quick")
        || std::env::var("LSL_BENCH_QUICK").is_ok_and(|v| v != "0");
    let (side, gnp_n, rounds, repeats, mut shard_counts): (usize, usize, usize, usize, Vec<usize>) =
        if tiny {
            (48, 512, 4, 1, vec![2, 4])
        } else {
            (256, 4096, 12, 3, vec![2, 4, 8, 16])
        };
    let partitioners: Vec<Partitioner> = match flag::<Partitioner>("--partitioner") {
        Some(p) => vec![p],
        None => Partitioner::ALL.to_vec(),
    };
    if let Some(k) = flag::<usize>("--shards") {
        shard_counts = vec![k];
    }

    header(&[
        "E14: sharded owner-computes scaling + boundary messages",
        "messages/round <= 2*cut by construction (O(delta*cut) regime);",
        "trajectories are bit-identical to the sequential backend",
    ]);
    header_row(
        "graph,partitioner,shards,n,cut,balance,rounds,secs,steps_vertices_per_sec,\
         msgs_per_round,bytes_per_round,changed_per_round",
    );

    let mut rows: Vec<Row> = Vec::new();
    sweep(
        &format!("torus{side}x{side}"),
        &format!("torus:{side}x{side}"),
        14,
        16,
        &shard_counts,
        &partitioners,
        rounds,
        repeats,
        &mut rows,
    );
    {
        // Sparse G(n,p) at mean degree 8, q = 4Δ for the *realized* max
        // degree (probed from the same deterministic build the sweep
        // uses), comfortably in the Theorem 1.2 regime — the pre-spec
        // workload, reproduced exactly.
        let graph = format!("gnp:n={gnp_n},p={}", 8.0 / gnp_n as f64);
        let gspec = lsl_core::spec::GraphSpec::parse(&graph).expect("a valid gnp family");
        let q = 4 * gspec.build(14).max_degree().max(1);
        sweep(
            &format!("gnp{gnp_n}"),
            &graph,
            14,
            q,
            &shard_counts,
            &partitioners,
            rounds,
            repeats,
            &mut rows,
        );
    }

    for r in &rows {
        row(&[
            r.graph.clone(),
            r.partitioner.into(),
            r.shards.to_string(),
            r.n.to_string(),
            r.cut.to_string(),
            format!("{:.3}", r.balance),
            r.rounds.to_string(),
            format!("{:.4}", r.secs),
            format!("{:.3e}", r.steps_vertices_per_sec),
            format!("{:.1}", r.msgs_per_round),
            format!("{:.1}", r.bytes_per_round),
            format!("{:.1}", r.changed_per_round),
        ]);
    }

    // Only full sweeps record the datapoint (a narrowed sweep would
    // silently shrink the recorded coverage).
    let full = !tiny && partitioners.len() == Partitioner::ALL.len() && shard_counts.len() > 1;

    // Record the datapoint (hand-rolled JSON: no serde in the tree).
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"graph\": \"{}\", \"partitioner\": \"{}\", \"shards\": {}, \"n\": {}, \
                 \"cut\": {}, \"balance\": {:.3}, \"rounds\": {}, \"secs\": {:.6}, \
                 \"steps_vertices_per_sec\": {:.1}, \"msgs_per_round\": {:.1}, \
                 \"bytes_per_round\": {:.1}, \"changed_per_round\": {:.1}}}",
                r.graph,
                r.partitioner,
                r.shards,
                r.n,
                r.cut,
                r.balance,
                r.rounds,
                r.secs,
                r.steps_vertices_per_sec,
                r.msgs_per_round,
                r.bytes_per_round,
                r.changed_per_round,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"sharded_scaling\",\n  \"workload\": \"LocalMetropolis proper \
         coloring, torus + gnp, shard-count x partitioner sweep\",\n  \"meta\": {},\n  \
         \"tiny\": {tiny},\n  \"rows\": [\n{}\n  ]\n}}\n",
        lsl_bench::meta_json(),
        json_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sharded.json");
    if !full {
        // Smoke / narrowed runs must not clobber the recorded
        // full-workload datapoint.
        println!("# partial run: not recording {path}");
    } else if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not record {path}: {e}");
    } else {
        println!("# recorded {path}");
    }
}
