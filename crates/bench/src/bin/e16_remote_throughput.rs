//! E16 — the wire's cost: jobs/sec in-process vs over loopback TCP.
//!
//! PR 5 put the sampling service on the network (`lsl serve`, the
//! line-delimited event protocol). This experiment measures what the
//! wire costs: a fixed batch of [`JobSpec`] queries is answered
//! (a) by an in-process [`Service`] and (b) over a live loopback
//! [`Server`] by 1, 2, and 4 concurrent client sessions splitting the
//! same batch. Every mode's results are asserted **bit-identical**
//! (the determinism-over-TCP contract), so the sweep isolates pure
//! protocol + socket cost: framing, escaping, event forwarding, and
//! per-session threads.
//!
//! Results are printed as TSV and recorded to `BENCH_remote.json` at
//! the workspace root. `--tiny` (or `quick` / `LSL_BENCH_QUICK=1`)
//! shrinks the workload for smoke runs and skips the JSON write.
//!
//! NOTE: as with E15, this container exposes 1 CPU, so multi-session
//! rows measure protocol overhead at fixed compute, not scaling —
//! rerun on multicore hardware for real session-parallelism numbers.

use lsl_bench::{header, header_row, row};
use lsl_core::net::{Client, Server};
use lsl_core::service::Service;
use lsl_core::spec::{JobResult, JobSpec, SpecError};
use std::time::Instant;

struct Row {
    mode: String,
    jobs: usize,
    secs: f64,
    jobs_per_sec: f64,
    vs_in_process: f64,
}

/// The query batch: `shared` jobs on one cached model (distinct
/// seeds) plus `fresh` jobs each building its own random graph — the
/// E15 mix, so in-process rows are comparable across experiments.
fn batch(shared: usize, fresh: usize, side: usize, rounds: usize) -> Vec<String> {
    let mut lines = Vec::with_capacity(shared + fresh);
    for seed in 0..shared {
        lines.push(format!(
            "graph=torus:{side}x{side} model=coloring:q=16 seed={seed} job=run:rounds={rounds}"
        ));
    }
    for seed in 0..fresh {
        lines.push(format!(
            "graph=gnp:n={},p=0.01 model=coloring:q=24 seed={seed} job=run:rounds={rounds}",
            side * side
        ));
    }
    lines
}

/// Serves the whole batch on an in-process pool.
fn serve_in_process(lines: &[String], threads: usize) -> (f64, Vec<JobResult>) {
    let service = Service::new(threads);
    let t = Instant::now();
    let handles: Vec<_> = lines
        .iter()
        .map(|l| service.submit(l.parse::<JobSpec>().expect("a valid E16 spec")))
        .collect();
    let results: Vec<JobResult> = handles
        .into_iter()
        .map(|h| h.wait().expect("a valid E16 spec"))
        .collect();
    (t.elapsed().as_secs_f64(), results)
}

/// Serves the batch over loopback TCP, split round-robin across
/// `sessions` concurrent client connections; results are reassembled
/// into submission order.
fn serve_remote(server: &Server, lines: &[String], sessions: usize) -> (f64, Vec<JobResult>) {
    let addr = server.local_addr();
    let t = Instant::now();
    let workers: Vec<_> = (0..sessions)
        .map(|s| {
            let mine: Vec<(usize, String)> = lines
                .iter()
                .enumerate()
                .filter(|(i, _)| i % sessions == s)
                .map(|(i, l)| (i, l.clone()))
                .collect();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect to loopback");
                for (_, line) in &mine {
                    client.submit(line).expect("submit over loopback");
                }
                let outcomes = client.drain().expect("drain the session");
                mine.into_iter()
                    .zip(outcomes)
                    .map(|((i, _), o)| {
                        let member: Result<JobResult, SpecError> =
                            o.members.into_iter().next().expect("one member");
                        (i, member.expect("a valid E16 spec"))
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut indexed: Vec<(usize, JobResult)> = Vec::with_capacity(lines.len());
    for w in workers {
        indexed.extend(w.join().expect("a client session"));
    }
    let secs = t.elapsed().as_secs_f64();
    indexed.sort_by_key(|(i, _)| *i);
    (secs, indexed.into_iter().map(|(_, r)| r).collect())
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny" || a == "tiny" || a == "quick")
        || std::env::var("LSL_BENCH_QUICK").is_ok_and(|v| v != "0");
    let (side, rounds, shared, fresh, session_counts): (usize, usize, usize, usize, Vec<usize>) =
        if tiny {
            (24, 10, 8, 4, vec![1, 2])
        } else {
            (64, 40, 48, 16, vec![1, 2, 4])
        };
    let threads = 4;

    header(&[
        "E16: remote-serving throughput (in-process vs loopback TCP sessions)",
        "same mixed batch as E15; every mode's answers asserted bit-identical,",
        "so rows isolate protocol + socket cost (1-CPU container: see rustdoc)",
    ]);
    header_row("mode,jobs,secs,jobs_per_sec,vs_in_process");

    let lines = batch(shared, fresh, side, rounds);
    let mut rows: Vec<Row> = Vec::new();

    let (secs, reference) = serve_in_process(&lines, threads);
    let base_rate = lines.len() as f64 / secs;
    rows.push(Row {
        mode: "in-process".into(),
        jobs: lines.len(),
        secs,
        jobs_per_sec: base_rate,
        vs_in_process: 1.0,
    });

    let server = Server::bind("127.0.0.1:0", threads).expect("bind a loopback server");
    for &sessions in &session_counts {
        let (secs, results) = serve_remote(&server, &lines, sessions);
        assert_eq!(
            reference, results,
            "the wire changed a result — determinism-over-TCP violated"
        );
        let rate = lines.len() as f64 / secs;
        rows.push(Row {
            mode: format!("loopback:{sessions}"),
            jobs: lines.len(),
            secs,
            jobs_per_sec: rate,
            vs_in_process: rate / base_rate,
        });
    }

    for r in &rows {
        row(&[
            r.mode.clone(),
            r.jobs.to_string(),
            format!("{:.4}", r.secs),
            format!("{:.1}", r.jobs_per_sec),
            format!("{:.2}", r.vs_in_process),
        ]);
    }

    // Record the datapoint (hand-rolled JSON: no serde in the tree).
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"mode\": \"{}\", \"jobs\": {}, \"secs\": {:.6}, \
                 \"jobs_per_sec\": {:.1}, \"vs_in_process\": {:.2}}}",
                r.mode, r.jobs, r.secs, r.jobs_per_sec, r.vs_in_process,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"remote_throughput\",\n  \"workload\": \"mixed JobSpec batch \
         (shared torus coloring + per-seed gnp) served in-process vs over loopback TCP \
         at 1/2/4 client sessions\",\n  \"note\": \"1-CPU container: loopback rows measure \
         protocol overhead at fixed compute, not session scaling\",\n  \"meta\": {},\n  \
         \"tiny\": {tiny},\n  \"rows\": [\n{}\n  ]\n}}\n",
        lsl_bench::meta_json(),
        json_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_remote.json");
    if tiny {
        // Smoke runs must not clobber the recorded full-workload datapoint.
        println!("# tiny run: not recording {path}");
    } else if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not record {path}: {e}");
    } else {
        println!("# recorded {path}");
    }
}
