//! E11 — substrate cross-validation: the exact machinery agrees with
//! itself and with the paper's closed forms.
//!
//! * Transfer-matrix marginals vs brute-force enumeration on paths/cycles.
//! * The Dobrushin total influence: exhaustive matrix vs the §3.2 formula
//!   `α = max_v d_v/(q_v − d_v)` for (list) colorings.
//! * Condition (6) truth table for colorings vs the paper's "q ≥ Δ+1 and
//!   q ≥ 3" criterion.

use lsl_bench::{f, header, header_row, row};
use lsl_graph::generators;
use lsl_mrf::dobrushin::{
    influence_matrix_exhaustive, total_influence, uniform_coloring_total_influence,
};
use lsl_mrf::gibbs::Enumeration;
use lsl_mrf::models;
use lsl_mrf::transfer::{cycle_marginal, PathDp};

fn main() {
    header(&["E11: substrate validation"]);
    header_row("check,instance,value_a,value_b,agree");

    // Transfer vs enumeration (paths).
    for (name, mrf) in [
        (
            "path5:coloring q3",
            models::proper_coloring(generators::path(5), 3),
        ),
        (
            "path6:hardcore λ1.3",
            models::hardcore(generators::path(6), 1.3),
        ),
        ("path5:ising β0.7", models::ising(generators::path(5), 0.7)),
    ] {
        let dp = PathDp::new(&mrf).unwrap();
        let exact = Enumeration::new(&mrf).unwrap();
        let mut worst = 0.0f64;
        for v in mrf.graph().vertices() {
            let a = dp.marginal(v).unwrap();
            let b = exact.marginal(v);
            for (x, y) in a.iter().zip(&b) {
                worst = worst.max((x - y).abs());
            }
        }
        row(&[
            "transfer_vs_enum".into(),
            name.into(),
            format!("{worst:.2e}"),
            "0".into(),
            (worst < 1e-9).to_string(),
        ]);
    }

    // Cycle marginals.
    let mrf = models::hardcore(generators::cycle(7), 0.9);
    let exact = Enumeration::new(&mrf).unwrap();
    let mut worst = 0.0f64;
    for v in mrf.graph().vertices() {
        let a = cycle_marginal(&mrf, v).unwrap();
        let b = exact.marginal(v);
        for (x, y) in a.iter().zip(&b) {
            worst = worst.max((x - y).abs());
        }
    }
    row(&[
        "cycle_transfer_vs_enum".into(),
        "cycle7:hardcore λ0.9".into(),
        format!("{worst:.2e}"),
        "0".into(),
        (worst < 1e-9).to_string(),
    ]);

    // Dobrushin influence: exhaustive ≤ formula, both < 1 iff q > 2Δ.
    for q in [3usize, 4, 5, 6] {
        let g = generators::path(4);
        let mrf = models::proper_coloring(g.clone(), q);
        let alpha_ex = total_influence(&influence_matrix_exhaustive(&mrf));
        let alpha_formula = uniform_coloring_total_influence(&g, q);
        row(&[
            "dobrushin".into(),
            format!("path4 coloring q={q}"),
            f(alpha_ex),
            f(alpha_formula),
            (alpha_ex <= alpha_formula + 1e-12).to_string(),
        ]);
    }

    // Condition (6) truth table.
    for (q, delta_graph) in [
        (3usize, generators::path(3)),
        (4, generators::path(3)),
        (3, generators::star(3)),
        (4, generators::star(3)),
        (5, generators::star(3)),
    ] {
        let delta = delta_graph.max_degree();
        let mrf = models::proper_coloring(delta_graph, q);
        let holds = mrf.condition6_holds_exhaustive();
        let paper = q > delta && q >= 3;
        row(&[
            "condition6".into(),
            format!("Δ={delta} q={q}"),
            holds.to_string(),
            paper.to_string(),
            (holds == paper).to_string(),
        ]);
    }
}
