//! E10 — the Remark after Theorem 3.2: the LubyGlauber analysis holds for
//! *any* independent scheduler with Pr[v ∈ I] ≥ γ, at rate
//! O(1/((1−α)γ) · log(n/ε)).
//!
//! We measure coalescence rounds of LubyGlauber under four schedulers on
//! the same instance and report rounds·γ, which the theory predicts to be
//! roughly constant across independent samplers; the chromatic scheduler
//! (deterministic scan, the Gonzalez-et-al. baseline) is included for
//! contrast.

use lsl_bench::{f, header, header_row, row, scaled};
use lsl_core::luby_glauber::LubyGlauber;
use lsl_core::mixing::coalescence_summary;
use lsl_core::schedule::{
    BernoulliFilterScheduler, ChromaticScheduler, LubyScheduler, Scheduler, SingletonScheduler,
};
use lsl_core::Chain;
use lsl_graph::generators;
use lsl_mrf::models;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    header(&[
        "E10: scheduler generality (Remark after Thm 3.2)",
        "coalescence rounds x gamma should be ~constant for independent samplers",
    ]);
    header_row("scheduler,gamma,mean_rounds,se,timeouts,rounds_x_gamma");

    let n = scaled(128usize, 48);
    let delta = 4;
    let q = 12;
    let trials = scaled(5usize, 2);
    let mut rng = StdRng::seed_from_u64(1);
    let g = generators::random_regular(n, delta, &mut rng);
    let mrf = models::proper_coloring(g, q);

    macro_rules! measure {
        ($name:expr, $make_sched:expr) => {{
            let gamma = $make_sched.gamma(mrf.graph());
            let (s, t) = coalescence_summary(
                |st| {
                    let mut c = LubyGlauber::with_scheduler(&mrf, $make_sched);
                    c.set_state(st);
                    c
                },
                &mrf,
                trials,
                5_000_000,
                99,
            );
            let gstr = gamma.map_or("-".to_string(), f);
            let prod = gamma.map_or("-".to_string(), |gm| f(s.mean * gm));
            row(&[
                $name.into(),
                gstr,
                f(s.mean),
                f(s.std_error),
                t.to_string(),
                prod,
            ]);
        }};
    }

    measure!("Luby", LubyScheduler::new());
    measure!("Bernoulli(0.1)", BernoulliFilterScheduler::new(0.1));
    measure!("Bernoulli(0.25)", BernoulliFilterScheduler::new(0.25));
    measure!("Singleton", SingletonScheduler);
    measure!("Chromatic", ChromaticScheduler::greedy(mrf.graph()));
}
