//! E10 — the Remark after Theorem 3.2: the LubyGlauber analysis holds for
//! *any* independent scheduler with Pr[v ∈ I] ≥ γ, at rate
//! O(1/((1−α)γ) · log(n/ε)).
//!
//! We measure coalescence rounds of LubyGlauber under four schedulers on
//! the same instance and report rounds·γ, which the theory predicts to be
//! roughly constant across independent samplers; the chromatic scheduler
//! (deterministic scan, the Gonzalez-et-al. baseline) is included for
//! contrast.

use lsl_bench::{f, header, header_row, row, scaled};
use lsl_core::sampler::{Algorithm, Sampler, Sched};
use lsl_core::schedule::{
    BernoulliFilterScheduler, ChromaticScheduler, LubyScheduler, Scheduler, SingletonScheduler,
};
use lsl_graph::generators;
use lsl_mrf::models;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The γ of Theorem 3.2's remark for a [`Sched`] choice on this network
/// (None for the deterministic chromatic scan).
fn gamma(sched: Sched, g: &lsl_graph::Graph) -> Option<f64> {
    match sched {
        Sched::Luby => LubyScheduler::new().gamma(g),
        Sched::Singleton => SingletonScheduler.gamma(g),
        Sched::Bernoulli(p) => BernoulliFilterScheduler::new(p).gamma(g),
        Sched::Chromatic => ChromaticScheduler::greedy(g).gamma(g),
    }
}

fn main() {
    header(&[
        "E10: scheduler generality (Remark after Thm 3.2)",
        "coalescence rounds x gamma should be ~constant for independent samplers",
    ]);
    header_row("scheduler,gamma,mean_rounds,se,timeouts,rounds_x_gamma");

    let n = scaled(128usize, 48);
    let delta = 4;
    let q = 12;
    let trials = scaled(5usize, 2);
    let mut rng = StdRng::seed_from_u64(1);
    let g = generators::random_regular(n, delta, &mut rng);
    let mrf = models::proper_coloring(g, q);

    for (name, sched) in [
        ("Luby", Sched::Luby),
        ("Bernoulli(0.1)", Sched::Bernoulli(0.1)),
        ("Bernoulli(0.25)", Sched::Bernoulli(0.25)),
        ("Singleton", Sched::Singleton),
        ("Chromatic", Sched::Chromatic),
    ] {
        let gm = gamma(sched, mrf.graph());
        let report = Sampler::for_mrf(&mrf)
            .algorithm(Algorithm::LubyGlauber)
            .scheduler(sched)
            .seed(99)
            .coalescence(trials, 5_000_000)
            .expect("LubyGlauber accepts every scheduler");
        let gstr = gm.map_or("-".to_string(), f);
        let prod = gm.map_or("-".to_string(), |g| f(report.summary.mean * g));
        row(&[
            name.into(),
            gstr,
            f(report.summary.mean),
            f(report.summary.std_error),
            report.timeouts.to_string(),
            prod,
        ]);
    }
}
