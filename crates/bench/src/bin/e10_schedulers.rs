//! E10 — the Remark after Theorem 3.2: the LubyGlauber analysis holds for
//! *any* independent scheduler with Pr[v ∈ I] ≥ γ, at rate
//! O(1/((1−α)γ) · log(n/ε)).
//!
//! We measure coalescence rounds of LubyGlauber under four schedulers on
//! the same instance and report rounds·γ, which the theory predicts to be
//! roughly constant across independent samplers; the chromatic scheduler
//! (deterministic scan, the Gonzalez-et-al. baseline) is included for
//! contrast.
//!
//! The sweep is one base [`JobSpec`] varying only `scheduler=`; the
//! instance is built once through the spec layer and shared.

use lsl_bench::{coalescence_output, f, header, header_row, row, scaled};
use lsl_core::sampler::Sched;
use lsl_core::schedule::{
    BernoulliFilterScheduler, ChromaticScheduler, LubyScheduler, Scheduler, SingletonScheduler,
};
use lsl_core::spec::{BuiltModel, JobSpec};

/// The γ of Theorem 3.2's remark for a [`Sched`] choice on this network
/// (None for the deterministic chromatic scan).
fn gamma(sched: Sched, g: &lsl_graph::Graph) -> Option<f64> {
    match sched {
        Sched::Luby => LubyScheduler::new().gamma(g),
        Sched::Singleton => SingletonScheduler.gamma(g),
        Sched::Bernoulli(p) => BernoulliFilterScheduler::new(p).gamma(g),
        Sched::Chromatic => ChromaticScheduler::greedy(g).gamma(g),
    }
}

fn main() {
    header(&[
        "E10: scheduler generality (Remark after Thm 3.2)",
        "coalescence rounds x gamma should be ~constant for independent samplers",
    ]);
    header_row("scheduler,gamma,mean_rounds,se,timeouts,rounds_x_gamma");

    let n = scaled(128usize, 48);
    let delta = 4;
    let q = 12;
    let trials = scaled(5usize, 2);

    let base: JobSpec = format!(
        "graph=random-regular:n={n},d={delta} model=coloring:q={q} \
         algorithm=luby-glauber seed=99 graph-seed=1 \
         job=coalescence:trials={trials},max-rounds=5000000"
    )
    .parse()
    .expect("a valid E10 spec");
    // Build the instance once; every scheduler samples the same graph.
    let model = base.build_model();
    let graph = match &model {
        BuiltModel::Mrf(mrf) => mrf.graph_arc(),
        BuiltModel::Csp { .. } => unreachable!("coloring is an MRF"),
    };

    for (name, sched) in [
        ("Luby", Sched::Luby),
        ("Bernoulli(0.1)", Sched::Bernoulli(0.1)),
        ("Bernoulli(0.25)", Sched::Bernoulli(0.25)),
        ("Singleton", Sched::Singleton),
        ("Chromatic", Sched::Chromatic),
    ] {
        let gm = gamma(sched, &graph);
        let mut spec = base.clone();
        spec.scheduler = Some(sched);
        let result = spec
            .run_on(&model)
            .expect("LubyGlauber accepts every scheduler");
        let (mean, se, timeouts) = coalescence_output(&result);
        let gstr = gm.map_or("-".to_string(), f);
        let prod = gm.map_or("-".to_string(), |g| f(mean * g));
        row(&[
            name.into(),
            gstr,
            f(mean),
            f(se),
            timeouts.to_string(),
            prod,
        ]);
    }
}
