//! E7 — Theorems 5.2/5.4/1.3: the max-cut reduction and the Ω(diam)
//! separation.
//!
//! Series A (exact, Thm 5.4): the phase vector of the hardcore model on
//! the lifted cycle H^G concentrates on the two maximum cuts of H with
//! equal mass, once λ > λ_c(Δ); sweep λ through the threshold.
//! Series B (exact vs empirical, Thm 5.2): the antipodal conditional gap
//! |Pr[Y_0 = + | Y_{m/2} = +] − Pr[Y_0 = + | Y_{m/2} = −]| is ≈ 1 for
//! Gibbs but ≈ 0 for t-round local protocols with 2t < dist — the
//! contradiction (eq. 37) behind the Ω(diam) bound.

use lsl_bench::{f, header, header_row, row, scaled};
use lsl_lowerbound::exact_phases::ExactPhaseDistribution;
use lsl_lowerbound::experiment::local_protocol_phase_stats;
use lsl_lowerbound::gadget::GadgetParams;
use lsl_lowerbound::lifted::LiftedCycle;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    header(&[
        "E7: hardcore max-cut reduction on the lifted cycle (Thm 5.2/5.4/1.3)",
        "gadget: side=10 terminals=4 delta=4 (lambda_c(4) = 27/16 ~ 1.69)",
        "selected gadget (probabilistic method, 4 candidates)",
    ]);
    let params = GadgetParams {
        side: scaled(10, 8),
        terminals: 4,
        delta: 4,
    };
    let m = 6;
    let mut rng = StdRng::seed_from_u64(20_26);
    let lifted = LiftedCycle::build_selected(m, params, 10.0, 4, &mut rng);
    header_row("series,lambda_or_rounds,maxcut_mass,balance,tie_mass,conditional_gap");

    // Series A: sweep λ through λ_c.
    for &lambda in &[0.5, 1.0, 1.69, 3.0, 6.0, 10.0, 16.0] {
        let d = ExactPhaseDistribution::compute(&lifted, lambda);
        let (p1, p2) = d.max_cut_probabilities();
        let balance = if p1 + p2 > 0.0 {
            (p1 - p2).abs() / (p1 + p2)
        } else {
            f64::NAN
        };
        let gap = d.conditional_gap().unwrap_or(f64::NAN);
        row(&[
            "A:gibbs_exact".into(),
            f(lambda),
            f(d.max_cut_mass()),
            format!("{balance:.2e}"),
            f(d.tie_mass()),
            f(gap),
        ]);
    }

    // Series B: t-round protocols at λ = 10 vs the exact law.
    let lambda = 10.0;
    let exact = ExactPhaseDistribution::compute(&lifted, lambda);
    row(&[
        "B:gibbs_exact".into(),
        "-".into(),
        f(exact.max_cut_mass()),
        "-".into(),
        f(exact.tie_mass()),
        f(exact.conditional_gap().unwrap_or(f64::NAN)),
    ]);
    let runs = scaled(3000usize, 500);
    for t in [0usize, 1, 2, 4] {
        let stats = local_protocol_phase_stats(&lifted, lambda, t, runs, 5 + t as u64);
        row(&[
            "B:protocol".into(),
            t.to_string(),
            f(stats.max_cut_fraction()),
            "-".into(),
            f(stats.ties as f64 / stats.total as f64),
            stats.conditional_gap().map_or("-".into(), f),
        ]);
    }
}
