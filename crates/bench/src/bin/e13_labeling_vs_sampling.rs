//! E13 — the labeling/sampling separation (Theorem 1.3 discussion).
//!
//! On the very networks of the Ω(diam) sampling lower bound, *labeling*
//! is easy: Luby's algorithm constructs a maximal independent set in
//! O(log n) rounds, and the empty set is an independent set in 0 rounds.
//! Sampling a uniform independent set on the same graph requires
//! Ω(diam) rounds. This binary prints construction rounds vs diameter as
//! the cycle (and hence the diameter) grows, at fixed gadget size.

use lsl_bench::{f, header, header_row, row, scaled};
use lsl_core::labeling::run_luby_mis;
use lsl_graph::traversal;
use lsl_lowerbound::gadget::GadgetParams;
use lsl_lowerbound::lifted::LiftedCycle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    header(&[
        "E13: labeling vs sampling separation (Thm 1.3 discussion)",
        "MIS construction rounds (Luby) vs diam(G)/2 (sampling lower bound)",
    ]);
    header_row("m,n,diam,sampling_lb_rounds,mis_rounds_mean,mis_rounds_max");
    let params = GadgetParams {
        side: 8,
        terminals: 4,
        delta: 4,
    };
    for m in scaled(vec![4usize, 8, 16, 32, 64], vec![4, 8, 16]) {
        let mut rng = StdRng::seed_from_u64(m as u64);
        let lifted = LiftedCycle::build(m, params, &mut rng);
        let graph = Arc::new(lifted.graph().clone());
        let diam = traversal::diameter(&graph).expect("connected") as usize;
        let trials = 5;
        let mut rounds = Vec::new();
        for seed in 0..trials {
            let (_, r) = run_luby_mis(Arc::clone(&graph), seed, 500).expect("terminates");
            rounds.push(r as f64);
        }
        let mean = rounds.iter().sum::<f64>() / trials as f64;
        let max = rounds.iter().copied().fold(0.0f64, f64::max);
        row(&[
            m.to_string(),
            graph.num_vertices().to_string(),
            diam.to_string(),
            // Theorem 5.2's protocol bound: t ≤ 0.49·diam is impossible.
            format!("{}", (diam as f64 * 0.49) as usize),
            f(mean),
            f(max),
        ]);
    }
    println!("# MIS rounds stay ~log n while the sampling bound grows linearly with diam.");
}
