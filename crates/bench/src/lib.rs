//! Shared harness utilities for the experiment binaries (E1–E14).
//!
//! Each binary in `src/bin/` regenerates one experiment from the
//! `EXPERIMENTS.md` index at the workspace root as a TSV table on
//! stdout, prefixed by `#` comment lines describing the paper claim
//! being exercised. Binaries accept an optional `quick` argument that
//! shrinks the workload (used by CI-style smoke runs); the full
//! defaults reproduce the recorded numbers. Chains are constructed
//! through the sampler facade (`lsl_core::sampler`).

use lsl_core::spec::{JobOutput, JobResult};

/// Whether the binary was invoked with a `quick` argument.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "quick")
}

/// Unwraps a coalescence job's `(mean_rounds, std_error, timeouts)`.
///
/// # Panics
/// Panics if the result is not a coalescence output (an experiment
/// wiring bug, not a data condition).
pub fn coalescence_output(result: &JobResult) -> (f64, f64, usize) {
    match result.output {
        JobOutput::Coalescence {
            mean_rounds,
            std_error,
            timeouts,
            ..
        } => (mean_rounds, std_error, timeouts),
        ref other => panic!("expected a coalescence output, got {other:?}"),
    }
}

/// Picks `full` or `quick` depending on [`quick_mode`].
pub fn scaled<T>(full: T, quick: T) -> T {
    if quick_mode() {
        quick
    } else {
        full
    }
}

/// Prints a `#`-prefixed header comment.
pub fn header(lines: &[&str]) {
    for line in lines {
        println!("# {line}");
    }
}

/// Prints a TSV row.
pub fn row(cols: &[String]) {
    println!("{}", cols.join("\t"));
}

/// Formats a float with 4 significant decimals.
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

/// Prints a column-header row given a comma-separated spec.
pub fn header_row(spec: &str) {
    println!("{}", spec.replace(',', "\t"));
}

/// Logical CPUs visible to this process. Recorded so a datapoint from
/// a 1-CPU container is never mistaken for a scaling ceiling.
#[must_use]
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// First stdout line of `cmd args...`, or `"unknown"` if the command
/// is missing or fails (benches must run in stripped containers).
fn probe(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| {
            String::from_utf8(o.stdout)
                .ok()
                .and_then(|s| s.lines().next().map(|l| l.trim().to_string()))
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Provenance block every `BENCH_*.json` embeds: host CPU count, the
/// rustc that built the binary's workspace, and the git revision the
/// numbers were measured at. Returned as a JSON object literal —
/// splice it as the value of a `"meta"` key. All probed values are
/// alphanumeric/punctuation (no quotes), so no escaping is needed.
#[must_use]
pub fn meta_json() -> String {
    format!(
        "{{\"cpus\": {}, \"rustc\": \"{}\", \"git_rev\": \"{}\"}}",
        host_cpus(),
        probe("rustc", &["--version"]),
        probe(
            "git",
            &[
                "-C",
                env!("CARGO_MANIFEST_DIR"),
                "rev-parse",
                "--short",
                "HEAD"
            ]
        ),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn scaled_picks_full_without_flag() {
        // Tests run without a `quick` argv entry.
        assert_eq!(super::scaled(10, 1), 10);
    }

    #[test]
    fn formatting() {
        assert_eq!(super::f(0.123456), "0.1235");
    }

    #[test]
    fn meta_json_is_wellformed() {
        let meta = super::meta_json();
        assert!(meta.starts_with('{') && meta.ends_with('}'), "{meta}");
        for key in ["\"cpus\": ", "\"rustc\": \"", "\"git_rev\": \""] {
            assert!(meta.contains(key), "{meta} lacks {key}");
        }
        assert!(super::host_cpus() >= 1);
    }
}
