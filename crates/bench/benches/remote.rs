//! Wire-overhead bench: the loopback TCP path (frame codec + socket +
//! event forwarding) versus the in-process [`Service`] path on one
//! small fixed workload (so chain time does not drown the protocol
//! cost), plus the codec alone.
//!
//! Three measurements:
//!
//! * **in-process** — submit + wait on a `Service` (the E15 baseline);
//! * **loopback** — the same batch through `Server`/`Client` frames;
//! * **codec** — print + parse of a `finished` event frame, isolating
//!   the hand-rolled wire codec itself.
//!
//! Results are printed as TSV. `quick` (or `LSL_BENCH_QUICK=1`)
//! shrinks the workload for smoke runs.

use lsl_core::net::{Client, Server};
use lsl_core::proto::ServerFrame;
use lsl_core::service::{JobEvent, Service};
use lsl_core::spec::JobSpec;
use std::time::Instant;

/// Best-of-`repeats` wall-clock of `f`, which runs one measurement block.
fn best_secs(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick")
        || std::env::var("LSL_BENCH_QUICK").is_ok_and(|v| v != "0");
    let (jobs, rounds, repeats) = if quick { (16, 10, 2) } else { (128, 25, 3) };
    let threads = 2;

    let lines: Vec<String> = (0..jobs)
        .map(|seed| {
            format!("graph=torus:16x16 model=coloring:q=16 seed={seed} job=run:rounds={rounds}")
        })
        .collect();

    println!("# remote bench: {jobs} jobs of {rounds} rounds on a 16x16 torus coloring");
    println!("mode\tsecs\tjobs_per_sec");

    let in_process = best_secs(repeats, || {
        let service = Service::new(threads);
        let handles: Vec<_> = lines
            .iter()
            .map(|l| service.submit(l.parse::<JobSpec>().expect("a valid bench spec")))
            .collect();
        for h in handles {
            h.wait().expect("a valid bench spec");
        }
    });
    println!(
        "in-process\t{in_process:.4}\t{:.1}",
        jobs as f64 / in_process
    );

    let server = Server::bind("127.0.0.1:0", threads).expect("bind a loopback server");
    let loopback = best_secs(repeats, || {
        let mut client = Client::connect(server.local_addr()).expect("connect");
        for line in &lines {
            client.submit(line).expect("submit");
        }
        let outcomes = client.drain().expect("drain");
        assert!(outcomes.iter().all(|o| o.is_ok()));
    });
    println!("loopback\t{loopback:.4}\t{:.1}", jobs as f64 / loopback);

    // The codec alone: round-trip a finished-event frame.
    let result = lines[0]
        .parse::<JobSpec>()
        .unwrap()
        .run()
        .expect("a valid bench spec");
    let frame = ServerFrame::Event {
        id: 1,
        index: 0,
        event: JobEvent::Finished(result),
    };
    let codec_iters = jobs * 1000;
    let codec = best_secs(repeats, || {
        for _ in 0..codec_iters {
            let printed = frame.to_string();
            let reparsed: ServerFrame = printed.parse().expect("canonical frame");
            assert!(matches!(reparsed, ServerFrame::Event { .. }));
        }
    });
    println!(
        "codec\t{codec:.4}\t{:.0} frames/sec",
        codec_iters as f64 / codec
    );
}
