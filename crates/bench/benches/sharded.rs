//! Criterion bench: sharded backend step cost vs shard count.
//!
//! One synchronous LocalMetropolis round on a 64×64 torus coloring,
//! through the flat sequential engine and through owner-computes
//! shards at increasing shard counts (contiguous partition — row
//! bands on the torus). The gap between `sequential` and `sharded/1`
//! is the pure slab/exchange bookkeeping overhead; growth past the
//! core count shows the scoped-thread fork-join floor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsl_core::engine::rules::LocalMetropolisRule;
use lsl_core::engine::sharded::ShardedChain;
use lsl_core::engine::SyncChain;
use lsl_graph::partition::Partition;
use lsl_mrf::models;

fn sharded_step(c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "quick")
        || std::env::var("LSL_BENCH_QUICK").is_ok_and(|v| v != "0");
    if quick {
        std::env::set_var("LSL_BENCH_WINDOW_MS", "60");
    }
    let side = if quick { 24 } else { 64 };
    let mrf = models::proper_coloring(lsl_graph::generators::torus(side, side), 16);

    let mut group = c.benchmark_group(format!("sharded_step/torus{side}x{side}"));
    group.bench_function("sequential", |b| {
        let mut chain = SyncChain::new(&mrf, LocalMetropolisRule::new(), 1);
        b.iter(|| chain.step());
    });
    for shards in [1usize, 2, 4, 8] {
        let partition = Partition::contiguous(mrf.graph(), shards);
        group.bench_with_input(
            BenchmarkId::new("sharded", shards),
            &partition,
            |b, partition| {
                let mut chain =
                    ShardedChain::new(&mrf, LocalMetropolisRule::new(), 1, partition.clone());
                b.iter(|| chain.step());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, sharded_step);
criterion_main!(benches);
