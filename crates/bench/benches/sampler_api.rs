//! Facade-overhead bench: the sampler builder vs direct engine use.
//!
//! The facade type-erases the rule behind one virtual call per *round*
//! (each round does O(n) per-vertex work), so the design claim is that
//! the front door costs nothing measurable. This bench runs the same
//! 256×256 torus LocalMetropolis workload both ways on the sequential
//! and parallel backends and records the relative overhead to
//! `BENCH_sampler_api.json` at the workspace root.
//!
//! `quick` as an argument (or `LSL_BENCH_QUICK=1`) shrinks the workload
//! for smoke runs (and skips the JSON write).

use lsl_core::engine::rules::LocalMetropolisRule;
use lsl_core::engine::{Backend, SyncChain};
use lsl_core::sampler::{Algorithm, Sampler};
use lsl_mrf::models;
use std::time::Instant;

struct Row {
    surface: &'static str,
    backend: &'static str,
    rounds: usize,
    secs: f64,
    steps_vertices_per_sec: f64,
}

/// Best-of-`repeats` wall-clock of `f`, which runs one measurement block.
fn best_secs(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick")
        || std::env::var("LSL_BENCH_QUICK").is_ok_and(|v| v != "0");
    let (side, rounds, repeats) = if quick { (64, 4, 2) } else { (256, 12, 3) };
    let mrf = models::proper_coloring(lsl_graph::generators::torus(side, side), 16);
    let n = mrf.num_vertices();
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    let mut rows: Vec<Row> = Vec::new();

    let backends: [(&'static str, Backend); 2] = [
        ("sequential", Backend::Sequential),
        ("parallel", Backend::Parallel { threads: 0 }),
    ];
    for (name, backend) in backends {
        // Direct engine use: the monomorphized SyncChain.
        {
            let mut chain = SyncChain::new(&mrf, LocalMetropolisRule::new(), 1);
            chain.set_backend(backend);
            chain.run(2); // warm up
            let secs = best_secs(repeats, || chain.run(rounds));
            rows.push(Row {
                surface: "engine",
                backend: name,
                rounds,
                secs,
                steps_vertices_per_sec: rounds as f64 * n as f64 / secs,
            });
        }
        // The same workload through the type-erased facade.
        {
            let mut sampler = Sampler::for_mrf(&mrf)
                .algorithm(Algorithm::LocalMetropolis)
                .backend(backend)
                .seed(1)
                .build()
                .expect("valid configuration");
            sampler.run(2);
            let secs = best_secs(repeats, || sampler.run(rounds));
            rows.push(Row {
                surface: "facade",
                backend: name,
                rounds,
                secs,
                steps_vertices_per_sec: rounds as f64 * n as f64 / secs,
            });
        }
    }

    println!("# sampler facade vs direct engine, {side}x{side} torus, q=16, {threads} thread(s)");
    println!("surface\tbackend\trounds\tsecs\tsteps_vertices_per_sec\toverhead_vs_engine");
    let mut json_rows: Vec<String> = Vec::new();
    for pair in rows.chunks(2) {
        let (engine, facade) = (&pair[0], &pair[1]);
        for r in pair {
            let overhead = facade.secs / engine.secs - 1.0;
            println!(
                "{}\t{}\t{}\t{:.4}\t{:.3e}\t{}",
                r.surface,
                r.backend,
                r.rounds,
                r.secs,
                r.steps_vertices_per_sec,
                if r.surface == "facade" {
                    format!("{:+.2}%", overhead * 100.0)
                } else {
                    "-".into()
                }
            );
            json_rows.push(format!(
                "    {{\"surface\": \"{}\", \"backend\": \"{}\", \"rounds\": {}, \"secs\": {:.6}, \"steps_vertices_per_sec\": {:.1}, \"overhead_vs_engine\": {:.4}}}",
                r.surface,
                r.backend,
                r.rounds,
                r.secs,
                r.steps_vertices_per_sec,
                if r.surface == "facade" { overhead } else { 0.0 }
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"sampler_api_overhead\",\n  \"workload\": \"LocalMetropolis proper {side}x{side} torus coloring, q=16\",\n  \"meta\": {},\n  \"threads\": {threads},\n  \"quick\": {quick},\n  \"rows\": [\n{}\n  ]\n}}\n",
        lsl_bench::meta_json(),
        json_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sampler_api.json");
    if quick {
        // Smoke runs must not clobber the recorded full-workload datapoint.
        println!("# quick run: not recording {path}");
    } else if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not record {path}: {e}");
    } else {
        println!("# recorded {path}");
    }
}
