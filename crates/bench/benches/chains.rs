//! Criterion throughput benches for the four sampling chains.
//!
//! Wall-clock per chain step across graph families and degrees — the
//! systems-side context for the round-complexity experiments E1/E2 (a
//! LocalMetropolis round touches every edge; a LubyGlauber round every
//! vertex plus scheduled marginals; Glauber one vertex). All chains are
//! constructed through the sampler facade and stepped self-keyed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsl_core::sampler::{Algorithm, Sampler};
use lsl_core::single_site::ScanChain;
use lsl_core::Chain;
use lsl_graph::generators;
use lsl_local::rng::Xoshiro256pp;
use lsl_mrf::models;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_chain_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_step/torus32x32_q20");
    let mrf = models::proper_coloring(generators::torus(32, 32), 20);
    let build = |alg, seed| {
        Sampler::for_mrf(&mrf)
            .algorithm(alg)
            .seed(seed)
            .build()
            .expect("valid configuration")
    };

    group.bench_function("glauber_sweep", |b| {
        let mut chain = build(Algorithm::Glauber, 1);
        let n = mrf.num_vertices();
        b.iter(|| {
            chain.run(n);
            black_box(chain.state()[0])
        });
    });

    group.bench_function("scan_sweep", |b| {
        let mut chain = ScanChain::new(&mrf);
        let mut rng = Xoshiro256pp::seed_from(2);
        b.iter(|| {
            chain.step(&mut rng);
            black_box(chain.state()[0])
        });
    });

    group.bench_function("luby_glauber_round", |b| {
        let mut chain = build(Algorithm::LubyGlauber, 3);
        b.iter(|| {
            chain.step();
            black_box(chain.state()[0])
        });
    });

    group.bench_function("local_metropolis_round", |b| {
        let mut chain = build(Algorithm::LocalMetropolis, 4);
        b.iter(|| {
            chain.step();
            black_box(chain.state()[0])
        });
    });
    group.finish();
}

fn bench_degree_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_cost_vs_delta/n256");
    for delta in [4usize, 8, 16, 32] {
        let mut rng = StdRng::seed_from_u64(delta as u64);
        let g = generators::random_regular(256, delta, &mut rng);
        let mrf = models::proper_coloring(g, 4 * delta);
        group.bench_with_input(
            BenchmarkId::new("local_metropolis", delta),
            &delta,
            |b, _| {
                let mut chain = Sampler::for_mrf(&mrf)
                    .algorithm(Algorithm::LocalMetropolis)
                    .seed(9)
                    .build()
                    .expect("valid configuration");
                b.iter(|| {
                    chain.step();
                    black_box(chain.state()[0])
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("luby_glauber", delta), &delta, |b, _| {
            let mut chain = Sampler::for_mrf(&mrf)
                .algorithm(Algorithm::LubyGlauber)
                .seed(10)
                .build()
                .expect("valid configuration");
            b.iter(|| {
                chain.step();
                black_box(chain.state()[0])
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain_steps, bench_degree_scaling);
criterion_main!(benches);
