//! Serving-layer overhead bench: the [`Service`] queue + cache path
//! versus calling [`JobSpec::run`] directly on the caller's thread.
//!
//! Three measurements on one small fixed workload (so chain time does
//! not drown the serving cost):
//!
//! * **direct** — `spec.run()` in a loop (no queue, no cache);
//! * **service:1** — one worker: pure queue + reply-channel + cache
//!   overhead per job;
//! * **service:N** — all cores: the concurrency win on a batch.
//!
//! Results are printed as TSV. `quick` (or `LSL_BENCH_QUICK=1`)
//! shrinks the workload for smoke runs.

use lsl_core::service::Service;
use lsl_core::spec::JobSpec;
use std::time::Instant;

/// Best-of-`repeats` wall-clock of `f`, which runs one measurement block.
fn best_secs(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick")
        || std::env::var("LSL_BENCH_QUICK").is_ok_and(|v| v != "0");
    let (jobs, rounds, repeats) = if quick { (16, 10, 2) } else { (128, 25, 3) };
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());

    let specs: Vec<JobSpec> = (0..jobs)
        .map(|seed| {
            format!("graph=torus:16x16 model=coloring:q=16 seed={seed} job=run:rounds={rounds}")
                .parse()
                .expect("a valid bench spec")
        })
        .collect();

    println!("# service bench: {jobs} jobs of {rounds} rounds on a 16x16 torus coloring");
    println!("mode\tsecs\tjobs_per_sec");

    let direct = best_secs(repeats, || {
        for spec in &specs {
            spec.run().expect("a valid bench spec");
        }
    });
    println!("direct\t{direct:.4}\t{:.1}", jobs as f64 / direct);

    for workers in [1, threads] {
        let secs = best_secs(repeats, || {
            let service = Service::new(workers);
            let handles: Vec<_> = specs.iter().cloned().map(|s| service.submit(s)).collect();
            for h in handles {
                h.wait().expect("a valid bench spec");
            }
        });
        println!("service:{workers}\t{secs:.4}\t{:.1}", jobs as f64 / secs);
    }
}
