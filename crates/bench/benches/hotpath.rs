//! Criterion benches for the hot-path engine: scalar oracle vs
//! lane-batched kernels on the E17 reference workloads, small enough to
//! double as a CI smoke test that every hot-path variant still builds a
//! kernel and steps.
//!
//! The recorded full-workload datapoint lives in `BENCH_hotpath.json`
//! (written by `e17_hotpath`); this harness is for quick relative
//! comparisons during development.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsl_core::engine::rules::LocalMetropolisRule;
use lsl_core::engine::{HotPath, SyncChain};
use lsl_graph::generators;
use lsl_mrf::models;
use std::hint::black_box;

fn bench_hotpaths(c: &mut Criterion) {
    let workloads: [(&str, lsl_mrf::Mrf); 2] = [
        (
            "torus64x64_ising_b0.4",
            models::ising(generators::torus(64, 64), 0.4),
        ),
        (
            "torus64x64_coloring_q16",
            models::proper_coloring(generators::torus(64, 64), 16),
        ),
    ];
    for (name, mrf) in workloads {
        let mut group = c.benchmark_group(format!("hotpath_round/{name}"));
        for hp in ["scalar", "lanes:auto:block", "lanes:auto:pervertex"] {
            let hotpath: HotPath = hp.parse().expect("a valid hot path");
            if hotpath
                .resolved_packing(mrf.q())
                .is_some_and(|p| !p.supports(mrf.q()))
            {
                continue;
            }
            group.bench_with_input(BenchmarkId::from_parameter(hp), &hotpath, |b, &hotpath| {
                let mut chain = SyncChain::new(&mrf, LocalMetropolisRule::new(), 1);
                chain.set_hotpath(hotpath);
                chain.step(); // allocate lanes/blocks outside the timing loop
                b.iter(|| {
                    chain.step();
                    black_box(chain.state()[0])
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_hotpaths);
criterion_main!(benches);
