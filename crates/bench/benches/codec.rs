//! Codec bench: the hand-rolled text line codec vs the binary frame
//! codec, isolated from sockets and chains — pure encode+decode round
//! trips on the two payload shapes the protocol ships:
//!
//! * **result** — a `finished` event with a `run` output (scalars);
//! * **state** — a `state` event with a full 256×256 torus
//!   configuration (byte-packed, ~64 KB).
//!
//! Results are printed as TSV (`frames/sec` and bytes per frame for
//! both codecs). `quick` (or `LSL_BENCH_QUICK=1`) shrinks the
//! iteration counts for smoke runs.

use lsl_core::codec::{self, StateBlob};
use lsl_core::proto::ServerFrame;
use lsl_core::service::JobEvent;
use lsl_core::spec::JobSpec;
use std::time::Instant;

/// Best-of-`repeats` wall-clock of `f`, which runs one measurement block.
fn best_secs(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick" || a == "--quick")
        || std::env::var("LSL_BENCH_QUICK").is_ok_and(|v| v != "0");
    let (side, result_iters, state_iters, repeats) = if quick {
        (64usize, 2_000usize, 50usize, 2usize)
    } else {
        (256, 50_000, 400, 3)
    };

    let result = format!("graph=torus:{side}x{side} model=coloring:q=16 seed=1 job=run:rounds=4")
        .parse::<JobSpec>()
        .unwrap()
        .run()
        .expect("a valid bench spec");
    let result_frame = ServerFrame::Event {
        id: 1,
        index: 0,
        event: JobEvent::Finished(result),
    };
    let n = side * side;
    let state: Vec<u32> = (0..n as u32).map(|i| i % 16).collect();
    let state_frame = ServerFrame::Event {
        id: 1,
        index: 0,
        event: JobEvent::State {
            round: 100,
            blob: StateBlob::pack(&state, 16),
        },
    };

    println!("# codec bench: text line vs binary frame round trips ({side}x{side} states)");
    println!("case\tcodec\tsecs\tframes_per_sec\tbytes_per_frame");

    for (case, frame, iters) in [
        ("result", &result_frame, result_iters),
        ("state", &state_frame, state_iters),
    ] {
        let text = best_secs(repeats, || {
            for _ in 0..iters {
                let printed = frame.to_string();
                let reparsed: ServerFrame = printed.parse().expect("canonical frame");
                assert!(matches!(reparsed, ServerFrame::Event { .. }));
            }
        });
        println!(
            "{case}\ttext\t{text:.4}\t{:.0}\t{}",
            iters as f64 / text,
            frame.to_string().len() + 1
        );
        let binary = best_secs(repeats, || {
            for _ in 0..iters {
                let payload = codec::encode_server(frame);
                let decoded = codec::decode_server(&payload).expect("canonical frame");
                assert!(matches!(decoded, ServerFrame::Event { .. }));
            }
        });
        println!(
            "{case}\tbinary\t{binary:.4}\t{:.0}\t{}",
            iters as f64 / binary,
            4 + codec::encode_server(frame).len()
        );
    }
}
