//! Throughput bench: step-engine backends on a 256×256 torus coloring.
//!
//! Measures steps·vertices/sec for one LocalMetropolis chain under the
//! Sequential and Parallel backends, and per-replica throughput for the
//! batched Replicas backend in both modes:
//!
//! * **iid** — independent masters (the TV-estimation workload);
//! * **coupled** — one shared master (the grand-coupling workload), where
//!   the batch computes each round's proposal randomness once for all
//!   copies instead of once per copy.
//!
//! Results are printed as TSV and recorded to `BENCH_step_engine.json`
//! at the workspace root. `quick` as an argument (or `LSL_BENCH_QUICK=1`)
//! shrinks the workload for smoke runs.

use lsl_core::coupling::adversarial_starts;
use lsl_core::engine::replicas::ReplicaSet;
use lsl_core::engine::rules::LocalMetropolisRule;
use lsl_core::engine::{Backend, SyncChain};
use lsl_mrf::models;
use std::time::Instant;

struct Row {
    backend: &'static str,
    mode: &'static str,
    replicas: usize,
    rounds: usize,
    secs: f64,
    steps_vertices_per_sec: f64,
}

/// Best-of-`repeats` wall-clock of `f`, which runs one measurement block.
fn best_secs(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick")
        || std::env::var("LSL_BENCH_QUICK").is_ok_and(|v| v != "0");
    let (side, rounds, replicas, repeats) = if quick {
        (64, 4, 4, 2)
    } else {
        (256, 12, 8, 3)
    };
    let mrf = models::proper_coloring(lsl_graph::generators::torus(side, side), 16);
    let n = mrf.num_vertices();
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    let mut rows: Vec<Row> = Vec::new();

    // One chain, Sequential backend.
    {
        let mut chain = SyncChain::new(&mrf, LocalMetropolisRule::new(), 1);
        chain.run(2); // warm up
        let secs = best_secs(repeats, || chain.run(rounds));
        rows.push(Row {
            backend: "sequential",
            mode: "single-chain",
            replicas: 1,
            rounds,
            secs,
            steps_vertices_per_sec: rounds as f64 * n as f64 / secs,
        });
    }

    // One chain, Parallel backend (bit-identical trajectory).
    {
        let mut chain = SyncChain::new(&mrf, LocalMetropolisRule::new(), 1);
        chain.set_backend(Backend::Parallel { threads: 0 });
        chain.run(2);
        let secs = best_secs(repeats, || chain.run(rounds));
        rows.push(Row {
            backend: "parallel",
            mode: "single-chain",
            replicas: 1,
            rounds,
            secs,
            steps_vertices_per_sec: rounds as f64 * n as f64 / secs,
        });
    }

    // Batched replicas, independent masters (per-replica throughput).
    {
        let mut set = ReplicaSet::independent(&mrf, LocalMetropolisRule::new(), replicas, 2);
        set.run(1);
        let secs = best_secs(repeats, || set.run(rounds));
        rows.push(Row {
            backend: "replicas",
            mode: "iid",
            replicas,
            rounds,
            secs,
            steps_vertices_per_sec: rounds as f64 * n as f64 * replicas as f64 / secs,
        });
    }

    // Batched replicas, one shared master: the grand coupling, where the
    // propose phase is computed once per round for the whole batch.
    {
        let starts = adversarial_starts(&mrf, replicas.saturating_sub(2), 5);
        let mut set = ReplicaSet::coupled(&mrf, LocalMetropolisRule::new(), &starts, 3);
        set.run(1);
        let b = starts.len();
        let secs = best_secs(repeats, || set.run(rounds));
        rows.push(Row {
            backend: "replicas",
            mode: "coupled",
            replicas: b,
            rounds,
            secs,
            steps_vertices_per_sec: rounds as f64 * n as f64 * b as f64 / secs,
        });
    }

    println!("# step-engine throughput, {side}x{side} torus, q=16, {threads} thread(s)");
    println!("backend\tmode\treplicas\trounds\tsecs\tsteps_vertices_per_sec");
    for r in &rows {
        println!(
            "{}\t{}\t{}\t{}\t{:.4}\t{:.3e}",
            r.backend, r.mode, r.replicas, r.rounds, r.secs, r.steps_vertices_per_sec
        );
    }

    // Record the datapoint (hand-rolled JSON: no serde in the tree).
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"backend\": \"{}\", \"mode\": \"{}\", \"replicas\": {}, \"rounds\": {}, \"secs\": {:.6}, \"steps_vertices_per_sec\": {:.1}}}",
                r.backend, r.mode, r.replicas, r.rounds, r.secs, r.steps_vertices_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"step_engine_throughput\",\n  \"workload\": \"LocalMetropolis proper {side}x{side} torus coloring, q=16\",\n  \"meta\": {},\n  \"threads\": {threads},\n  \"quick\": {quick},\n  \"rows\": [\n{}\n  ]\n}}\n",
        lsl_bench::meta_json(),
        json_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_step_engine.json");
    if quick {
        // Smoke runs must not clobber the recorded full-workload datapoint.
        println!("# quick run: not recording {path}");
    } else if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not record {path}: {e}");
    } else {
        println!("# recorded {path}");
    }
}
