//! Criterion benches for the substrates: scheduling, marginals, graph
//! algorithms, exact machinery, and the LOCAL simulator's overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use lsl_core::kernel::{local_metropolis_kernel, luby_set_distribution};
use lsl_core::programs::LocalMetropolisProgram;
use lsl_core::schedule::{LubyScheduler, Scheduler};
use lsl_graph::{generators, traversal, VertexId};
use lsl_local::rng::Xoshiro256pp;
use lsl_local::runtime::Simulator;
use lsl_lowerbound::gadget::{Gadget, GadgetParams};
use lsl_mrf::models;
use lsl_mrf::transfer::PathDp;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_substrate(c: &mut Criterion) {
    let torus = generators::torus(32, 32);

    c.bench_function("luby_step/torus32x32", |b| {
        let mut sched = LubyScheduler::new();
        let mut rng = Xoshiro256pp::seed_from(1);
        let mut mask = vec![false; torus.num_vertices()];
        b.iter(|| {
            sched.sample(&torus, &mut rng, &mut mask);
            black_box(mask[0])
        });
    });

    c.bench_function("marginal/torus32x32_q20", |b| {
        let mrf = models::proper_coloring(torus.clone(), 20);
        let config = vec![0u32; mrf.num_vertices()];
        let mut buf = vec![0.0; 20];
        b.iter(|| {
            mrf.marginal_weights_into(VertexId(500), &config, &mut buf);
            black_box(buf[0])
        });
    });

    c.bench_function("bfs_diameter/torus16x16", |b| {
        let g = generators::torus(16, 16);
        b.iter(|| black_box(traversal::diameter(&g)));
    });

    c.bench_function("transfer_marginal/path1000_q3", |b| {
        let mrf = models::proper_coloring(generators::path(1000), 3);
        let dp = PathDp::new(&mrf).unwrap();
        b.iter(|| black_box(dp.marginal(VertexId(500)).unwrap()[0]));
    });

    c.bench_function("gadget_sample/side10", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let params = GadgetParams {
            side: 10,
            terminals: 4,
            delta: 4,
        };
        b.iter(|| black_box(Gadget::sample(params, &mut rng).num_vertices()));
    });

    c.bench_function("exact_kernel/lm_path3_q3", |b| {
        let mrf = models::proper_coloring(generators::path(3), 3);
        b.iter(|| black_box(local_metropolis_kernel(&mrf, true).num_states()));
    });

    c.bench_function("luby_set_distribution/path6", |b| {
        let g = generators::path(6);
        b.iter(|| black_box(luby_set_distribution(&g).len()));
    });

    c.bench_function("local_simulator/lm_torus16x16_10rounds", |b| {
        let mrf = models::proper_coloring(generators::torus(16, 16), 12);
        b.iter(|| {
            let sim = Simulator::new(mrf.graph_arc(), 7);
            black_box(sim.run_with::<LocalMetropolisProgram>(10, &mrf).outputs[0])
        });
    });
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
