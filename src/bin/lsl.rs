//! `lsl` — the command-line front door.
//!
//! One binary replaces per-experiment argument parsing: name a
//! workload as a declarative spec line and run it — locally, against a
//! remote server, or serve the protocol yourself.
//!
//! ```text
//! lsl run graph=torus:16x16 model=coloring:q=16 seed=7 job=run:rounds=200
//! lsl run "graph=cycle:12 model=coloring:q=5 job=run:rounds=50 seeds=0..8"
//! lsl serve --addr 127.0.0.1:7878 --threads 4
//! lsl run --remote 127.0.0.1:7878 graph=cycle:12 model=coloring:q=5
//! lsl list scenarios
//! ```
//!
//! `run` accepts either bare `key=value` tokens (joined into one spec)
//! or quoted whole-spec arguments (each its own job). Lines may carry
//! the sweep clauses `seeds=a..b` / `sweep=param:start..end:step`,
//! expanding into many deterministic jobs reported per member plus a
//! summary. Multiple lines are served concurrently — through an
//! in-process [`Service`] worker pool, or over TCP with `--remote`
//! (bit-identical answers either way). Any failing job makes the exit
//! code non-zero and echoes the failing spec on stderr.

use lsl::core::cluster::Coordinator;
use lsl::core::codec::{Codec, StateBlob};
use lsl::core::lifecycle::Limits;
use lsl::core::net::{Client, Server};
use lsl::core::service::{JobEvent, Service};
use lsl::core::spec::{JobOutput, JobResult, ScenarioRegistry, SpecError, SweepResult, SweepSpec};
use lsl::core::store::ResultStore;
use std::process::ExitCode;

const USAGE: &str = "\
lsl — local sampling library

USAGE:
    lsl run [--threads N] [--remote ADDR] [--codec text|binary]
            [--store DIR] [--out FILE] <spec>...
    lsl serve [--addr ADDR] [--threads N] [--queue-cap N] [--inflight N]
              [--max-rounds N] [--store DIR] [--grace SECS]
    lsl coordinate --workers A:PORT,B:PORT[,..] [--codec text|binary]
                   [--ping-timeout SECS] [--attempts N] <spec>...
    lsl list scenarios
    lsl help

SPECS:
    A spec is whitespace-separated key=value tokens, e.g.

        graph=torus:16x16 model=coloring:q=16 seed=7 job=run:rounds=200

    Bare tokens after `run` are joined into one spec; arguments that
    contain whitespace (quote them) are complete specs of their own,
    and several run concurrently on a worker pool (--threads N,
    default: all cores). `--remote ADDR` sends the batch to an
    `lsl serve` instance instead; answers are bit-identical.
    `--codec binary` negotiates length-prefixed binary frames for the
    remote session (recommended for `job=stream`, which ships full
    configurations); the default text codec works everywhere.
    `--store DIR` keeps finished results on disk, keyed by canonical
    spec — re-running an identical spec answers from the store,
    bit-identically, without recomputing.
    `--out FILE` writes every received configuration (the final states
    of `job=sample`, the per-round states of `job=stream`) to FILE as
    bit-packed binary records.

    Sweep clauses expand one line into many jobs:

        seeds=0..32                 one job per seed
        sweep=beta:0.1..0.5:0.1     one job per parameter value

    Keys: graph model algorithm scheduler backend partitioner seed
          graph-seed burn-in job seeds sweep
    Run `lsl list scenarios` for every accepted value.

SERVE:
    `lsl serve` listens on --addr (default 127.0.0.1:7878; use port 0
    for an ephemeral port, printed on startup) and runs every session's
    jobs on a shared worker pool (--threads N, default: all cores).

    Admission limits (unlimited when omitted):
        --queue-cap N      at most N jobs queued service-wide; overflow
                           is rejected with a typed `rejected` event
        --inflight N       at most N unresolved jobs per session
        --max-rounds N     reject specs whose round budget exceeds N
    --store DIR attaches a disk-backed result store (as in `run`).

    Shutdown is graceful: on SIGINT/SIGTERM or a client `shutdown`
    frame the server stops accepting, lets in-flight jobs finish for
    --grace SECS (default 5), cancels the rest, and exits cleanly.

COORDINATE:
    `lsl coordinate` runs sweep lines over a fleet of `lsl serve`
    workers (--workers, comma-separated addresses) and prints the same
    report as a local `lsl run` — the aggregate is bit-identical, even
    if a worker dies mid-sweep (lost members are requeued and replayed
    deterministically; fleet events go to stderr). Members with
    `backend=cluster:k` execute as k cross-process shards spread over
    the fleet, exchanging boundary states every round.
    --codec picks the worker session codec (default binary);
    --ping-timeout bounds the liveness probe (default 5s);
    --attempts bounds reconnects and distributed-member retries
    (default 4).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("coordinate") => coordinate(&args[1..]),
        Some("list") => match args.get(1).map(String::as_str) {
            Some("scenarios") => {
                print!("{}", ScenarioRegistry::render());
                ExitCode::SUCCESS
            }
            other => {
                eprintln!("unknown list target {other:?} (expected: scenarios)");
                ExitCode::FAILURE
            }
        },
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            if args.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Takes the value of `--flag X` / `--flag=X` out of `args`; `None`
/// when absent, `Err` when the flag is dangling.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let prefix = format!("{flag}=");
    let mut value = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            args.remove(i);
            if i >= args.len() {
                return Err(format!("{flag} needs a value"));
            }
            value = Some(args.remove(i));
        } else if let Some(v) = args[i].strip_prefix(&prefix) {
            value = Some(v.to_string());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    Ok(value)
}

/// Takes `--threads N` out of `args` (0 = auto when absent).
fn take_threads(args: &mut Vec<String>) -> Result<usize, String> {
    match take_flag(args, "--threads")? {
        Some(n) => n
            .parse::<usize>()
            .map_err(|_| format!("--threads {n:?} is not a number")),
        None => Ok(0), // 0 = auto
    }
}

/// Takes a numeric `--flag N` out of `args`, with a default.
fn take_num<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
    default: T,
) -> Result<T, String> {
    match take_flag(args, flag)? {
        Some(n) => n
            .parse::<T>()
            .map_err(|_| format!("{flag} {n:?} is not a number")),
        None => Ok(default),
    }
}

/// Takes the admission-limit flags (`--queue-cap`, `--inflight`,
/// `--max-rounds`) out of `args`; absent flags stay unlimited.
fn take_limits(args: &mut Vec<String>) -> Result<Limits, String> {
    let defaults = Limits::default();
    Ok(Limits {
        queue_cap: take_num(args, "--queue-cap", defaults.queue_cap)?,
        per_session_inflight: take_num(args, "--inflight", defaults.per_session_inflight)?,
        max_rounds: take_num(args, "--max-rounds", defaults.max_rounds)?,
    })
}

/// Takes `--store DIR` out of `args` and opens the result store.
fn take_store(args: &mut Vec<String>) -> Result<Option<ResultStore>, String> {
    match take_flag(args, "--store")? {
        Some(dir) => ResultStore::open(&dir)
            .map(Some)
            .map_err(|e| format!("cannot open result store {dir:?}: {e}")),
        None => Ok(None),
    }
}

/// Everything `lsl run` needs, parsed or defaulted.
struct RunConfig {
    threads: usize,
    remote: Option<String>,
    store: Option<ResultStore>,
    codec: Codec,
    out: Option<String>,
    lines: Vec<String>,
}

/// Parses `run` arguments: flags, then either whole-spec arguments
/// (contain whitespace) or bare tokens joined into a single spec.
fn collect_specs(args: &[String]) -> Result<RunConfig, String> {
    let mut args = args.to_vec();
    let threads = take_threads(&mut args)?;
    let remote = take_flag(&mut args, "--remote")?;
    let store = take_store(&mut args)?;
    let codec = match take_flag(&mut args, "--codec")? {
        Some(name) => name
            .parse::<Codec>()
            .map_err(|_| format!("--codec {name:?} is not a codec (text | binary)"))?,
        None => Codec::Text,
    };
    let out = take_flag(&mut args, "--out")?;
    let mut specs: Vec<String> = Vec::new();
    let mut bare: Vec<String> = Vec::new();
    for arg in args {
        if arg.split_whitespace().count() > 1 {
            specs.push(arg);
        } else {
            bare.push(arg);
        }
    }
    if !bare.is_empty() {
        specs.push(bare.join(" "));
    }
    if specs.is_empty() {
        return Err("run needs at least one spec (see `lsl help`)".into());
    }
    Ok(RunConfig {
        threads,
        remote,
        store,
        codec,
        out,
        lines: specs,
    })
}

/// One line's member results, in expansion order.
type LineResults = Vec<Result<JobResult, SpecError>>;

/// Prints one line's results; returns whether every member succeeded.
fn report(sweep: &SweepSpec, members: &LineResults) -> bool {
    let spec = sweep.to_string();
    println!("# {spec}");
    let mut ok = true;
    for (index, member) in members.iter().enumerate() {
        match member {
            Ok(result) => {
                if members.len() > 1 {
                    print!("[{index}] ");
                }
                println!("{}  ({:.3}s)", result.output, result.elapsed_secs);
            }
            Err(e) => {
                eprintln!("error: {e}\n  in spec: {spec} (member {index})");
                ok = false;
            }
        }
    }
    if ok && members.len() > 1 {
        let results: Vec<JobResult> = members.iter().map(|m| m.clone().unwrap()).collect();
        println!("{}", SweepResult::aggregate(spec, results).summary);
    }
    ok
}

/// Per-line, per-member `(round, blob)` state deliveries.
type LineStates = Vec<Vec<(u64, StateBlob)>>;

/// Writes collected configurations as bit-packed binary records:
/// `b"LSL1"`, u32 record count, then per record u64 round, u32 n,
/// u32 q, u32 payload length, payload — all little-endian.
fn write_states(path: &str, states: &[(u64, StateBlob)]) -> std::io::Result<()> {
    let mut buf: Vec<u8> = Vec::with_capacity(16 + states.len() * 24);
    buf.extend_from_slice(b"LSL1");
    buf.extend_from_slice(
        &u32::try_from(states.len())
            .unwrap_or(u32::MAX)
            .to_le_bytes(),
    );
    for (round, blob) in states {
        buf.extend_from_slice(&round.to_le_bytes());
        buf.extend_from_slice(&(blob.n() as u32).to_le_bytes());
        buf.extend_from_slice(&(blob.q() as u32).to_le_bytes());
        buf.extend_from_slice(&(blob.byte_len() as u32).to_le_bytes());
        buf.extend_from_slice(blob.bytes());
    }
    std::fs::write(path, buf)
}

/// Drains one local job's event stream, siphoning `State` events into
/// `states` and returning the terminal result.
fn wait_collecting(
    handle: lsl::core::service::JobHandle,
    states: &mut Vec<(u64, StateBlob)>,
) -> Result<JobResult, SpecError> {
    for event in handle.events() {
        match event {
            JobEvent::State { round, blob } => states.push((round, blob)),
            JobEvent::Finished(result) => return Ok(result),
            JobEvent::Failed(e) => return Err(e),
            JobEvent::Rejected { reason } => return Err(SpecError::Rejected(reason)),
            JobEvent::Cancelled => return Err(SpecError::Cancelled),
            _ => {}
        }
    }
    Err(SpecError::ServiceStopped)
}

fn run(args: &[String]) -> ExitCode {
    let cfg = match collect_specs(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // Parse everything up front: a typo in job 3 should fail fast,
    // before jobs 1 and 2 burn cycles (or hit the network).
    let mut sweeps: Vec<SweepSpec> = Vec::with_capacity(cfg.lines.len());
    for line in &cfg.lines {
        match line.parse::<SweepSpec>() {
            Ok(sweep) => sweeps.push(sweep),
            Err(e) => {
                eprintln!("error: {e}\n  in spec: {line}");
                return ExitCode::FAILURE;
            }
        }
    }

    // `outcomes` and `state_lists` stay parallel: one entry per line,
    // one inner entry per member.
    let (outcomes, state_lists): (Vec<LineResults>, Vec<LineStates>) = match &cfg.remote {
        None => {
            if cfg.codec != Codec::Text {
                eprintln!("note: --codec is ignored without --remote (no wire involved)");
            }
            let service = match cfg.store {
                Some(store) => Service::with_store(cfg.threads, Limits::default(), store),
                None => Service::new(cfg.threads),
            };
            let handles: Vec<_> = sweeps.iter().map(|s| service.submit_sweep(s)).collect();
            let mut outcomes = Vec::with_capacity(handles.len());
            let mut state_lists = Vec::with_capacity(handles.len());
            for handle in handles {
                let mut members: LineResults = Vec::new();
                let mut states: LineStates = Vec::new();
                for member in handle.into_members() {
                    let mut member_states = Vec::new();
                    members.push(wait_collecting(member, &mut member_states));
                    states.push(member_states);
                }
                outcomes.push(members);
                state_lists.push(states);
            }
            (outcomes, state_lists)
        }
        Some(addr) => {
            if cfg.store.is_some() {
                eprintln!("note: --store is ignored with --remote (the server's store governs)");
            }
            if cfg.threads != 0 {
                eprintln!(
                    "note: --threads is ignored with --remote \
                     (the server's worker pool governs)"
                );
            }
            let mut client = match Client::connect_with(addr.as_str(), cfg.codec) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot connect to {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Submit the canonical forms (same expansion server-side).
            for sweep in &sweeps {
                if let Err(e) = client.submit(&sweep.to_string()) {
                    eprintln!("error: lost connection to {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            match client.drain() {
                Ok(outcomes) => outcomes.into_iter().map(|o| (o.members, o.states)).unzip(),
                Err(e) => {
                    eprintln!("error: session with {addr} failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let mut failed = false;
    for (sweep, members) in sweeps.iter().zip(&outcomes) {
        if !report(sweep, members) {
            failed = true;
        }
    }

    if let Some(path) = &cfg.out {
        // Everything state-shaped, in (line, member, round) order:
        // streamed per-round states first, then a sample job's final
        // configurations (stamped with their final round).
        let mut collected: Vec<(u64, StateBlob)> = Vec::new();
        for (members, states) in outcomes.iter().zip(&state_lists) {
            for (index, member) in members.iter().enumerate() {
                if let Some(s) = states.get(index) {
                    collected.extend(s.iter().cloned());
                }
                if let Ok(result) = member {
                    if let JobOutput::Sample { rounds, ref states } = result.output {
                        collected.extend(states.iter().cloned().map(|b| (rounds, b)));
                    }
                }
            }
        }
        match write_states(path, &collected) {
            Ok(()) => println!("# wrote {} state(s) to {path}", collected.len()),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn coordinate(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let workers: Vec<String> = match take_flag(&mut args, "--workers") {
        Ok(Some(list)) => list
            .split(',')
            .map(str::trim)
            .filter(|w| !w.is_empty())
            .map(String::from)
            .collect(),
        Ok(None) => {
            eprintln!("coordinate needs --workers A:PORT,B:PORT (see `lsl help`)");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let codec = match take_flag(&mut args, "--codec") {
        Ok(Some(name)) => match name.parse::<Codec>() {
            Ok(codec) => codec,
            Err(_) => {
                eprintln!("--codec {name:?} is not a codec (text | binary)");
                return ExitCode::FAILURE;
            }
        },
        Ok(None) => Codec::Binary,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let ping_timeout = match take_num(&mut args, "--ping-timeout", 5.0f64) {
        Ok(secs) => std::time::Duration::from_secs_f64(secs),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let attempts = match take_num(&mut args, "--attempts", 4u32) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // Same spec collection as `run`: whole-line arguments stand alone,
    // bare tokens join into one line.
    let mut lines: Vec<String> = Vec::new();
    let mut bare: Vec<String> = Vec::new();
    for arg in args {
        if arg.split_whitespace().count() > 1 {
            lines.push(arg);
        } else {
            bare.push(arg);
        }
    }
    if !bare.is_empty() {
        lines.push(bare.join(" "));
    }
    if lines.is_empty() {
        eprintln!("coordinate needs at least one spec (see `lsl help`)");
        return ExitCode::FAILURE;
    }
    let mut sweeps: Vec<SweepSpec> = Vec::with_capacity(lines.len());
    for line in &lines {
        match line.parse::<SweepSpec>() {
            Ok(sweep) => sweeps.push(sweep),
            Err(e) => {
                eprintln!("error: {e}\n  in spec: {line}");
                return ExitCode::FAILURE;
            }
        }
    }

    let coord = match Coordinator::connect(workers) {
        Ok(coord) => coord
            .codec(codec)
            .ping_timeout(ping_timeout)
            .attempts(attempts),
        Err(e) => {
            eprintln!("error: cannot reach the fleet: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    for sweep in &sweeps {
        match coord.run_sweep(&sweep.to_string()) {
            Ok(run) => {
                for event in &run.events {
                    eprintln!("# fleet: {event}");
                }
                let members: LineResults = run.result.results.into_iter().map(Ok).collect();
                if !report(sweep, &members) {
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("error: {e}\n  in spec: {sweep}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Everything `lsl serve` needs, parsed or defaulted.
struct ServeConfig {
    addr: String,
    threads: usize,
    limits: Limits,
    store: Option<ResultStore>,
    grace: std::time::Duration,
}

fn parse_serve_args(args: &[String]) -> Result<ServeConfig, String> {
    let mut args = args.to_vec();
    let addr = take_flag(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let threads = take_threads(&mut args)?;
    let limits = take_limits(&mut args)?;
    let store = take_store(&mut args)?;
    let grace = std::time::Duration::from_secs(take_num(&mut args, "--grace", 5u64)?);
    if let Some(extra) = args.first() {
        return Err(format!(
            "unexpected serve argument {extra:?} (see `lsl help`)"
        ));
    }
    Ok(ServeConfig {
        addr,
        threads,
        limits,
        store,
        grace,
    })
}

fn serve(args: &[String]) -> ExitCode {
    let cfg = match parse_serve_args(args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let service = match cfg.store {
        Some(store) => Service::with_store(cfg.threads, cfg.limits, store),
        None => Service::with_limits(cfg.threads, cfg.limits),
    };
    let mut server = match Server::bind_service(cfg.addr.as_str(), service) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", cfg.addr);
            return ExitCode::FAILURE;
        }
    };
    sig::install();
    // The line scripts scrape for the (possibly ephemeral) port.
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    while !sig::requested() && !server.shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("draining (grace {:?})", cfg.grace);
    let _ = std::io::stdout().flush();
    server.shutdown(cfg.grace);
    println!("drained");
    ExitCode::SUCCESS
}

/// Latches SIGINT/SIGTERM into a flag the serve loop polls, so the
/// process drains instead of dying mid-job. Raw `signal(2)` FFI — the
/// workspace links no libc crate.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: store to an atomic.
        REQUESTED.store(true, Ordering::Release);
    }

    /// Installs the handlers; errors are ignored (the worst case is
    /// the default die-on-signal behaviour we had anyway).
    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// Whether a shutdown signal arrived.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::Acquire)
    }
}

/// On non-unix targets there is no `signal(2)`; the serve loop then
/// only reacts to the protocol's `shutdown` frame.
#[cfg(not(unix))]
mod sig {
    /// No-op.
    pub fn install() {}

    /// Never requested.
    pub fn requested() -> bool {
        false
    }
}
