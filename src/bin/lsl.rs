//! `lsl` — the command-line front door.
//!
//! One binary replaces per-experiment argument parsing: name a
//! workload as a declarative spec line and run it.
//!
//! ```text
//! lsl run graph=torus:16x16 model=coloring:q=16 seed=7 job=run:rounds=200
//! lsl run --threads 4 "graph=cycle:12 model=coloring:q=5 seed=1" \
//!                     "graph=cycle:12 model=coloring:q=5 seed=2"
//! lsl list scenarios
//! ```
//!
//! `run` accepts either bare `key=value` tokens (joined into one spec)
//! or quoted whole-spec arguments (each its own job). Multiple jobs
//! are served concurrently through a
//! [`Service`](lsl::core::service::Service) worker pool and reported
//! in submission order.

use lsl::core::service::Service;
use lsl::core::spec::{JobSpec, ScenarioRegistry};
use std::process::ExitCode;

const USAGE: &str = "\
lsl — local sampling library

USAGE:
    lsl run [--threads N] <spec>...
    lsl list scenarios
    lsl help

SPECS:
    A spec is whitespace-separated key=value tokens, e.g.

        graph=torus:16x16 model=coloring:q=16 seed=7 job=run:rounds=200

    Bare tokens after `run` are joined into one spec; arguments that
    contain whitespace (quote them) are complete specs of their own,
    and several run concurrently on a worker pool (--threads N,
    default: all cores).

    Keys: graph model algorithm scheduler backend partitioner seed
          graph-seed burn-in job
    Run `lsl list scenarios` for every accepted value.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("list") => match args.get(1).map(String::as_str) {
            Some("scenarios") => {
                print!("{}", ScenarioRegistry::render());
                ExitCode::SUCCESS
            }
            other => {
                eprintln!("unknown list target {other:?} (expected: scenarios)");
                ExitCode::FAILURE
            }
        },
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            if args.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `run` arguments into (threads, specs): a `--threads N` flag,
/// then either whole-spec arguments (contain whitespace) or bare
/// tokens joined into a single spec.
fn collect_specs(args: &[String]) -> Result<(usize, Vec<String>), String> {
    let mut threads = 0usize; // 0 = auto
    let mut specs: Vec<String> = Vec::new();
    let mut bare: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--threads" {
            let n = it.next().ok_or("--threads needs a number")?;
            threads = n
                .parse::<usize>()
                .map_err(|_| format!("--threads {n:?} is not a number"))?;
        } else if let Some(n) = arg.strip_prefix("--threads=") {
            threads = n
                .parse::<usize>()
                .map_err(|_| format!("--threads {n:?} is not a number"))?;
        } else if arg.split_whitespace().count() > 1 {
            specs.push(arg.clone());
        } else {
            bare.push(arg);
        }
    }
    if !bare.is_empty() {
        specs.push(bare.join(" "));
    }
    if specs.is_empty() {
        return Err("run needs at least one spec (see `lsl help`)".into());
    }
    Ok((threads, specs))
}

fn run(args: &[String]) -> ExitCode {
    let (threads, lines) = match collect_specs(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // Parse everything up front: a typo in job 3 should fail fast,
    // before jobs 1 and 2 burn cycles.
    let mut specs: Vec<JobSpec> = Vec::with_capacity(lines.len());
    for line in &lines {
        match line.parse::<JobSpec>() {
            Ok(spec) => specs.push(spec),
            Err(e) => {
                eprintln!("error: {e}\n  in spec: {line}");
                return ExitCode::FAILURE;
            }
        }
    }

    let service = Service::new(threads);
    let handles: Vec<_> = specs.into_iter().map(|s| service.submit(s)).collect();
    let mut failed = false;
    for handle in handles {
        let spec = handle.spec().to_string();
        match handle.wait() {
            Ok(result) => {
                println!("# {spec}");
                println!("{}  ({:.3}s)", result.output, result.elapsed_secs);
            }
            Err(e) => {
                eprintln!("error: {e}\n  in spec: {spec}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
