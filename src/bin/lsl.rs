//! `lsl` — the command-line front door.
//!
//! One binary replaces per-experiment argument parsing: name a
//! workload as a declarative spec line and run it — locally, against a
//! remote server, or serve the protocol yourself.
//!
//! ```text
//! lsl run graph=torus:16x16 model=coloring:q=16 seed=7 job=run:rounds=200
//! lsl run "graph=cycle:12 model=coloring:q=5 job=run:rounds=50 seeds=0..8"
//! lsl serve --addr 127.0.0.1:7878 --threads 4
//! lsl run --remote 127.0.0.1:7878 graph=cycle:12 model=coloring:q=5
//! lsl list scenarios
//! ```
//!
//! `run` accepts either bare `key=value` tokens (joined into one spec)
//! or quoted whole-spec arguments (each its own job). Lines may carry
//! the sweep clauses `seeds=a..b` / `sweep=param:start..end:step`,
//! expanding into many deterministic jobs reported per member plus a
//! summary. Multiple lines are served concurrently — through an
//! in-process [`Service`] worker pool, or over TCP with `--remote`
//! (bit-identical answers either way). Any failing job makes the exit
//! code non-zero and echoes the failing spec on stderr.

use lsl::core::net::{Client, Server};
use lsl::core::service::Service;
use lsl::core::spec::{JobResult, ScenarioRegistry, SpecError, SweepResult, SweepSpec};
use std::process::ExitCode;

const USAGE: &str = "\
lsl — local sampling library

USAGE:
    lsl run [--threads N] [--remote ADDR] <spec>...
    lsl serve [--addr ADDR] [--threads N]
    lsl list scenarios
    lsl help

SPECS:
    A spec is whitespace-separated key=value tokens, e.g.

        graph=torus:16x16 model=coloring:q=16 seed=7 job=run:rounds=200

    Bare tokens after `run` are joined into one spec; arguments that
    contain whitespace (quote them) are complete specs of their own,
    and several run concurrently on a worker pool (--threads N,
    default: all cores). `--remote ADDR` sends the batch to an
    `lsl serve` instance instead; answers are bit-identical.

    Sweep clauses expand one line into many jobs:

        seeds=0..32                 one job per seed
        sweep=beta:0.1..0.5:0.1     one job per parameter value

    Keys: graph model algorithm scheduler backend partitioner seed
          graph-seed burn-in job seeds sweep
    Run `lsl list scenarios` for every accepted value.

SERVE:
    `lsl serve` listens on --addr (default 127.0.0.1:7878; use port 0
    for an ephemeral port, printed on startup) and runs every session's
    jobs on a shared worker pool (--threads N, default: all cores).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("list") => match args.get(1).map(String::as_str) {
            Some("scenarios") => {
                print!("{}", ScenarioRegistry::render());
                ExitCode::SUCCESS
            }
            other => {
                eprintln!("unknown list target {other:?} (expected: scenarios)");
                ExitCode::FAILURE
            }
        },
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            if args.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Takes the value of `--flag X` / `--flag=X` out of `args`; `None`
/// when absent, `Err` when the flag is dangling.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let prefix = format!("{flag}=");
    let mut value = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            args.remove(i);
            if i >= args.len() {
                return Err(format!("{flag} needs a value"));
            }
            value = Some(args.remove(i));
        } else if let Some(v) = args[i].strip_prefix(&prefix) {
            value = Some(v.to_string());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    Ok(value)
}

/// Takes `--threads N` out of `args` (0 = auto when absent).
fn take_threads(args: &mut Vec<String>) -> Result<usize, String> {
    match take_flag(args, "--threads")? {
        Some(n) => n
            .parse::<usize>()
            .map_err(|_| format!("--threads {n:?} is not a number")),
        None => Ok(0), // 0 = auto
    }
}

/// Parses `run` arguments into (threads, remote, spec lines): flags,
/// then either whole-spec arguments (contain whitespace) or bare
/// tokens joined into a single spec.
fn collect_specs(args: &[String]) -> Result<(usize, Option<String>, Vec<String>), String> {
    let mut args = args.to_vec();
    let threads = take_threads(&mut args)?;
    let remote = take_flag(&mut args, "--remote")?;
    let mut specs: Vec<String> = Vec::new();
    let mut bare: Vec<String> = Vec::new();
    for arg in args {
        if arg.split_whitespace().count() > 1 {
            specs.push(arg);
        } else {
            bare.push(arg);
        }
    }
    if !bare.is_empty() {
        specs.push(bare.join(" "));
    }
    if specs.is_empty() {
        return Err("run needs at least one spec (see `lsl help`)".into());
    }
    Ok((threads, remote, specs))
}

/// One line's member results, in expansion order.
type LineResults = Vec<Result<JobResult, SpecError>>;

/// Prints one line's results; returns whether every member succeeded.
fn report(sweep: &SweepSpec, members: &LineResults) -> bool {
    let spec = sweep.to_string();
    println!("# {spec}");
    let mut ok = true;
    for (index, member) in members.iter().enumerate() {
        match member {
            Ok(result) => {
                if members.len() > 1 {
                    print!("[{index}] ");
                }
                println!("{}  ({:.3}s)", result.output, result.elapsed_secs);
            }
            Err(e) => {
                eprintln!("error: {e}\n  in spec: {spec} (member {index})");
                ok = false;
            }
        }
    }
    if ok && members.len() > 1 {
        let results: Vec<JobResult> = members.iter().map(|m| m.clone().unwrap()).collect();
        println!("{}", SweepResult::aggregate(spec, results).summary);
    }
    ok
}

fn run(args: &[String]) -> ExitCode {
    let (threads, remote, lines) = match collect_specs(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // Parse everything up front: a typo in job 3 should fail fast,
    // before jobs 1 and 2 burn cycles (or hit the network).
    let mut sweeps: Vec<SweepSpec> = Vec::with_capacity(lines.len());
    for line in &lines {
        match line.parse::<SweepSpec>() {
            Ok(sweep) => sweeps.push(sweep),
            Err(e) => {
                eprintln!("error: {e}\n  in spec: {line}");
                return ExitCode::FAILURE;
            }
        }
    }

    let outcomes: Vec<LineResults> = match &remote {
        None => {
            let service = Service::new(threads);
            let handles: Vec<_> = sweeps.iter().map(|s| service.submit_sweep(s)).collect();
            handles
                .into_iter()
                .map(|h| h.into_members().into_iter().map(|m| m.wait()).collect())
                .collect()
        }
        Some(addr) => {
            if threads != 0 {
                eprintln!(
                    "note: --threads is ignored with --remote \
                     (the server's worker pool governs)"
                );
            }
            let mut client = match Client::connect(addr.as_str()) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot connect to {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Submit the canonical forms (same expansion server-side).
            for sweep in &sweeps {
                if let Err(e) = client.submit(&sweep.to_string()) {
                    eprintln!("error: lost connection to {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            match client.drain() {
                Ok(outcomes) => outcomes.into_iter().map(|o| o.members).collect(),
                Err(e) => {
                    eprintln!("error: session with {addr} failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let mut failed = false;
    for (sweep, members) in sweeps.iter().zip(&outcomes) {
        if !report(sweep, members) {
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn serve(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let addr = match take_flag(&mut args, "--addr") {
        Ok(a) => a.unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let threads = match take_threads(&mut args) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(extra) = args.first() {
        eprintln!("unexpected serve argument {extra:?} (see `lsl help`)");
        return ExitCode::FAILURE;
    }
    let server = match Server::bind(addr.as_str(), threads) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The line scripts scrape for the (possibly ephemeral) port.
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
