//! `lsl` — **l**ocal **s**ampling **l**ibrary.
//!
//! A full reproduction of *"What can be sampled locally?"* (Weiming Feng,
//! Yuxin Sun, Yitong Yin, PODC 2017): distributed sampling from Gibbs
//! distributions of Markov random fields in Linial's LOCAL model.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`graph`] — the network substrate (CSR graphs, generators, BFS);
//! * [`mrf`] — Markov random fields, weighted local CSPs, exact Gibbs
//!   enumeration, transfer matrices, Dobrushin influence;
//! * [`local`] — a deterministic LOCAL-model simulator with per-vertex
//!   randomness streams and message-size accounting;
//! * [`core`] — the paper's algorithms: **LubyGlauber** (Algorithm 1) and
//!   **LocalMetropolis** (Algorithm 2), their sequential baselines, exact
//!   transition kernels, and coupling/mixing measurement;
//! * [`analysis`] — total-variation machinery, kernel spectral analysis,
//!   and the paper's closed-form bounds (`α* ≈ 3.634`, `2+√2`, ...);
//! * [`lowerbound`] — the Section-5 lower-bound constructions: path
//!   correlations (Ω(log n)) and the gadget-lifted cycle whose hardcore
//!   phases encode a maximum cut (Ω(diam)).
//!
//! # Quickstart
//!
//! Sample a uniform proper coloring of a torus with the LocalMetropolis
//! chain and check it is proper:
//!
//! ```
//! use lsl::core::local_metropolis::LocalMetropolis;
//! use lsl::core::Chain;
//! use lsl::graph::generators;
//! use lsl::local::rng::Xoshiro256pp;
//! use lsl::mrf::models;
//!
//! let mrf = models::proper_coloring(generators::torus(8, 8), 16);
//! let mut chain = LocalMetropolis::new(&mrf);
//! let mut rng = Xoshiro256pp::seed_from(7);
//! chain.run(100, &mut rng);
//! assert!(mrf.is_feasible(chain.state()));
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment index reproducing every claim of
//! the paper.

pub use lsl_analysis as analysis;
pub use lsl_core as core;
pub use lsl_graph as graph;
pub use lsl_local as local;
pub use lsl_lowerbound as lowerbound;
pub use lsl_mrf as mrf;
