//! `lsl` — **l**ocal **s**ampling **l**ibrary.
//!
//! A full reproduction of *"What can be sampled locally?"* (Weiming Feng,
//! Yuxin Sun, Yitong Yin, PODC 2017): distributed sampling from Gibbs
//! distributions of Markov random fields in Linial's LOCAL model.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`graph`] — the network substrate (CSR graphs, generators, BFS);
//! * [`mrf`] — Markov random fields, weighted local CSPs, exact Gibbs
//!   enumeration, transfer matrices, Dobrushin influence;
//! * [`local`] — a deterministic LOCAL-model simulator with per-vertex
//!   randomness streams and message-size accounting;
//! * [`core`] — the paper's algorithms: **LubyGlauber** (Algorithm 1) and
//!   **LocalMetropolis** (Algorithm 2), their sequential baselines, exact
//!   transition kernels, and coupling/mixing measurement;
//! * [`analysis`] — total-variation machinery, kernel spectral analysis,
//!   and the paper's closed-form bounds (`α* ≈ 3.634`, `2+√2`, ...);
//! * [`lowerbound`] — the Section-5 lower-bound constructions: path
//!   correlations (Ω(log n)) and the gadget-lifted cycle whose hardcore
//!   phases encode a maximum cut (Ω(diam)).
//!
//! # Quickstart
//!
//! Everything goes through one front door, the [`prelude`]'s `Sampler`
//! builder — pick a model, an algorithm, a scheduler, a backend, and
//! build. Sample a uniform proper coloring of a torus with the
//! LocalMetropolis chain and check it is proper:
//!
//! ```
//! use lsl::prelude::*;
//!
//! let mrf = models::proper_coloring(generators::torus(8, 8), 16);
//! let mut sampler = Sampler::for_mrf(&mrf)
//!     .algorithm(Algorithm::LocalMetropolis)
//!     .backend(Backend::Parallel { threads: 0 })
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! sampler.run(100);
//! assert!(mrf.is_feasible(sampler.state()));
//! ```
//!
//! Measurement runs as builder *jobs* (`tv_curve`, `coalescence`,
//! `distribution`) that spawn batched replicas on the step engine:
//!
//! ```
//! use lsl::mrf::gibbs::Enumeration;
//! use lsl::prelude::*;
//!
//! let mrf = models::proper_coloring(generators::cycle(4), 3);
//! let exact = Enumeration::new(&mrf).unwrap();
//! let curve = Sampler::for_mrf(&mrf)
//!     .algorithm(Algorithm::LubyGlauber)
//!     .scheduler(Sched::Luby)
//!     .seed(1)
//!     .tv_curve(&exact, &[0, 40, 120], 2000)
//!     .unwrap();
//! assert!(curve.last().unwrap().1 < 0.1);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment index reproducing every claim of
//! the paper.

pub use lsl_analysis as analysis;
pub use lsl_core as core;
pub use lsl_graph as graph;
pub use lsl_local as local;
pub use lsl_lowerbound as lowerbound;
pub use lsl_mrf as mrf;

/// The facade in one `use`: the sampler builder types, the
/// [`Chain`](crate::core::Chain) trait, the engine backend, common
/// model constructors
/// ([`models`](mod@crate::mrf::models)), graph
/// [`generators`](mod@crate::graph::generators), and the workspace PRNG.
///
/// ```
/// use lsl::prelude::*;
///
/// let mrf = models::ising(generators::torus(4, 4), 0.7);
/// let mut s = Sampler::for_mrf(&mrf).seed(3).build().unwrap();
/// s.run(20);
/// assert_eq!(s.state().len(), 16);
/// ```
pub mod prelude {
    pub use crate::core::prelude::{
        AcceptanceObserver, Algorithm, Backend, BuildError, Chain, CoalescenceReport,
        EnergyObserver, HammingObserver, JobHandle, JobOutput, JobResult, JobSpec, Observer,
        ReplicaBuilder, ReplicaSampler, Sampler, SamplerBuilder, ScenarioRegistry, Sched, Service,
        SpecError, Xoshiro256pp,
    };
    pub use crate::graph::generators;
    pub use crate::mrf::csp::Csp;
    pub use crate::mrf::{models, Mrf};
    pub use std::sync::Arc;
}
