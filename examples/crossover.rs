//! The paper's headline crossover: LubyGlauber needs Θ(Δ log n) rounds
//! while LocalMetropolis needs O(log n) — independent of Δ.
//!
//! This example measures grand-coupling coalescence rounds for both
//! chains on random Δ-regular graphs with q = 4Δ colors, sweeping Δ.
//!
//! Run with: `cargo run --release --example crossover`

use lsl::core::local_metropolis::LocalMetropolis;
use lsl::core::luby_glauber::LubyGlauber;
use lsl::core::mixing::coalescence_summary;
use lsl::core::Chain;
use lsl::graph::generators;
use lsl::mrf::models;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 128;
    let trials = 3;
    println!("n = {n}, q = 4Δ, {trials} coupling trials per point");
    println!(
        "{:>4} {:>6} {:>22} {:>22}",
        "Δ", "q", "LubyGlauber rounds", "LocalMetropolis rounds"
    );
    for delta in [4usize, 8, 12, 16] {
        let q = 4 * delta;
        let mut rng = StdRng::seed_from_u64(delta as u64);
        let g = generators::random_regular(n, delta, &mut rng);
        let mrf = models::proper_coloring(g, q);
        let (lg, _) = coalescence_summary(
            |s| {
                let mut c = LubyGlauber::new(&mrf);
                c.set_state(s);
                c
            },
            &mrf,
            trials,
            1_000_000,
            11,
        );
        let (lm, _) = coalescence_summary(
            |s| LocalMetropolis::with_state(&mrf, s.to_vec()),
            &mrf,
            trials,
            1_000_000,
            12,
        );
        println!(
            "{delta:>4} {q:>6} {:>18.1} ±{:<6.1} {:>15.1} ±{:<6.1}",
            lg.mean, lg.std_error, lm.mean, lm.std_error
        );
    }
    println!("\nLubyGlauber grows with Δ; LocalMetropolis stays flat (Thm 1.1 vs Thm 1.2).");
}
