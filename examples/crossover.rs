//! The paper's headline crossover: LubyGlauber needs Θ(Δ log n) rounds
//! while LocalMetropolis needs O(log n) — independent of Δ.
//!
//! This example measures grand-coupling coalescence rounds for both
//! chains on random Δ-regular graphs with q = 4Δ colors, sweeping Δ —
//! one `coalescence` job per (chain, Δ) point through the sampler
//! facade (coupled replica batches on the step engine).
//!
//! Run with: `cargo run --release --example crossover`

use lsl::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 128;
    let trials = 3;
    println!("n = {n}, q = 4Δ, {trials} coupling trials per point");
    println!(
        "{:>4} {:>6} {:>22} {:>22}",
        "Δ", "q", "LubyGlauber rounds", "LocalMetropolis rounds"
    );
    for delta in [4usize, 8, 12, 16] {
        let q = 4 * delta;
        let mut rng = StdRng::seed_from_u64(delta as u64);
        let g = generators::random_regular(n, delta, &mut rng);
        let mrf = Arc::new(models::proper_coloring(g, q));
        let lg = Sampler::for_mrf(Arc::clone(&mrf))
            .algorithm(Algorithm::LubyGlauber)
            .seed(11)
            .coalescence(trials, 1_000_000)
            .expect("valid configuration");
        let lm = Sampler::for_mrf(Arc::clone(&mrf))
            .algorithm(Algorithm::LocalMetropolis)
            .seed(12)
            .coalescence(trials, 1_000_000)
            .expect("valid configuration");
        println!(
            "{delta:>4} {q:>6} {:>18.1} ±{:<6.1} {:>15.1} ±{:<6.1}",
            lg.summary.mean, lg.summary.std_error, lm.summary.mean, lm.summary.std_error
        );
    }
    println!("\nLubyGlauber grows with Δ; LocalMetropolis stays flat (Thm 1.1 vs Thm 1.2).");
}
