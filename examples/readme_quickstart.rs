//! The README quickstart, compiled and run by CI so it can never rot.
//!
//! Keep this in sync with the "Quickstart" section of `README.md` — it
//! is the same program.
//!
//! Run with: `cargo run --release --example readme_quickstart`

use lsl::prelude::*;

fn main() {
    // A Markov random field: uniform proper 16-colorings of the 16x16
    // torus (q = 4Δ, comfortably inside the Theorem 1.2 regime).
    let mrf = models::proper_coloring(generators::torus(16, 16), 16);

    // One front door: model x algorithm x scheduler x backend. Backends
    // never change the trajectory — `Sharded` runs owner-computes graph
    // shards that exchange only boundary states, and still reproduces
    // the sequential chain bit for bit.
    let mut sampler = Sampler::for_mrf(&mrf)
        .algorithm(Algorithm::LocalMetropolis)
        .backend(Backend::Sharded { shards: 4 })
        .seed(7)
        .burn_in(100)
        .build()
        .expect("a valid configuration");
    sampler.run(20);
    assert!(mrf.is_feasible(sampler.state()), "coloring must be proper");
    println!(
        "sampled a proper {}-coloring of n = {} vertices in {} rounds",
        16,
        mrf.num_vertices(),
        sampler.round()
    );

    // Measurement runs as builder jobs on batched replicas: grand
    // couplings from adversarial starts estimate the mixing time.
    let report = Sampler::for_mrf(&mrf)
        .algorithm(Algorithm::LubyGlauber)
        .scheduler(Sched::Luby)
        .seed(1)
        .coalescence(5, 100_000)
        .expect("a valid configuration");
    println!(
        "LubyGlauber grand coupling coalesced in {:.0} rounds on average \
         ({} of 5 trials timed out)",
        report.summary.mean, report.timeouts
    );
}
