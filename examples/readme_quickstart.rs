//! The README quickstart, compiled and run by CI so it can never rot.
//!
//! Keep this in sync with the "Quickstart" section of `README.md` — it
//! is the same program.
//!
//! Run with: `cargo run --release --example readme_quickstart`

use lsl::prelude::*;

fn main() {
    // An *owned* model handle: `Sampler::for_mrf` takes anything that
    // converts into `Arc<Mrf>`, so the built sampler is a `'static +
    // Send` handle — it can outlive this scope, move to a worker
    // thread, and be served concurrently.
    let mrf = Arc::new(models::proper_coloring(generators::torus(16, 16), 16));

    // One front door: model x algorithm x scheduler x backend. Backends
    // never change the trajectory — `Sharded` runs owner-computes graph
    // shards that exchange only boundary states, and still reproduces
    // the sequential chain bit for bit.
    let mut sampler = Sampler::for_mrf(Arc::clone(&mrf))
        .algorithm(Algorithm::LocalMetropolis)
        .backend(Backend::Sharded { shards: 4 })
        .seed(7)
        .burn_in(100)
        .build()
        .expect("a valid configuration");
    sampler.run(20);
    assert!(mrf.is_feasible(sampler.state()), "coloring must be proper");
    println!(
        "sampled a proper 16-coloring of n = {} vertices in {} rounds",
        mrf.num_vertices(),
        sampler.round()
    );

    // The same workloads as declarative specs (the `lsl` CLI's format),
    // served concurrently by a sampling service with a shared model
    // cache. Every answer is bit-identical to a direct facade run.
    let service = Service::new(4);
    let handles: Vec<JobHandle> = (0..8)
        .map(|seed| {
            let spec: JobSpec =
                format!("graph=torus:16x16 model=coloring:q=16 seed={seed} job=run:rounds=120")
                    .parse()
                    .expect("a valid spec");
            service.submit(spec)
        })
        .collect();
    for handle in handles {
        let result = handle.wait().expect("a served sample");
        assert!(matches!(
            result.output,
            JobOutput::Run { feasible: true, .. }
        ));
    }
    println!("served 8 sampling queries from 1 cached model");

    // Measurement runs as jobs too: grand couplings from adversarial
    // starts estimate the mixing time.
    let spec: JobSpec = "graph=torus:16x16 model=coloring:q=16 algorithm=luby-glauber \
                         seed=1 job=coalescence:trials=5,max-rounds=100000"
        .parse()
        .expect("a valid spec");
    match spec.run().expect("a valid configuration").output {
        JobOutput::Coalescence {
            mean_rounds,
            timeouts,
            ..
        } => println!(
            "LubyGlauber grand coupling coalesced in {mean_rounds:.0} rounds on average \
             ({timeouts} of 5 trials timed out)"
        ),
        other => unreachable!("coalescence jobs report coalescence: {other:?}"),
    }
}
