//! List colorings: per-vertex color lists, validated against exact
//! enumeration.
//!
//! Builds a small list-coloring instance, samples it with LubyGlauber
//! many times, and compares empirical configuration frequencies with the
//! exact Gibbs (uniform-over-proper-list-colorings) distribution.
//!
//! Run with: `cargo run --release --example list_coloring_frequencies`

use lsl::analysis::EmpiricalDistribution;
use lsl::core::luby_glauber::LubyGlauber;
use lsl::core::Chain;
use lsl::graph::generators;
use lsl::local::rng::Xoshiro256pp;
use lsl::mrf::gibbs::{encode_config, Enumeration};
use lsl::mrf::models;

fn main() {
    let g = generators::cycle(5);
    let q = 4;
    let lists = vec![
        vec![0, 1],
        vec![1, 2, 3],
        vec![0, 2],
        vec![1, 3],
        vec![0, 2, 3],
    ];
    let mrf = models::list_coloring(g, q, &lists);
    let exact = Enumeration::new(&mrf).expect("small instance");
    println!(
        "C5 list coloring: {} proper list colorings out of {} configurations",
        exact.num_feasible(),
        exact.num_states()
    );

    let replicas = 40_000;
    let steps = 60;
    let mut emp = EmpiricalDistribution::new();
    for rep in 0..replicas {
        let mut chain = LubyGlauber::new(&mrf);
        let mut rng = Xoshiro256pp::seed_from(rep);
        chain.run(steps, &mut rng);
        emp.record(encode_config(chain.state(), q));
    }
    let tv = emp.tv_against_dense(&exact.distribution());
    println!("LubyGlauber, {steps} rounds x {replicas} replicas:");
    println!("  total variation distance to exact Gibbs = {tv:.4}");

    println!(
        "\nper-solution frequencies (expected {:.4} each):",
        1.0 / exact.num_feasible() as f64
    );
    for (idx, p) in exact.feasible().take(8) {
        println!(
            "  config #{idx}: exact {p:.4}, empirical {:.4}",
            emp.frequency(idx)
        );
    }
    println!("  ... ({} solutions total)", exact.num_feasible());
}
