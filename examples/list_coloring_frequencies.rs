//! List colorings: per-vertex color lists, validated against exact
//! enumeration.
//!
//! Builds a small list-coloring instance, runs the sampler facade's
//! `distribution` job (LubyGlauber, batched iid replicas on the step
//! engine), and compares empirical configuration frequencies with the
//! exact Gibbs (uniform-over-proper-list-colorings) distribution.
//!
//! Run with: `cargo run --release --example list_coloring_frequencies`

use lsl::mrf::gibbs::Enumeration;
use lsl::prelude::*;

fn main() {
    let g = generators::cycle(5);
    let q = 4;
    let lists = vec![
        vec![0, 1],
        vec![1, 2, 3],
        vec![0, 2],
        vec![1, 3],
        vec![0, 2, 3],
    ];
    let mrf = Arc::new(models::list_coloring(g, q, &lists));
    let exact = Enumeration::new(&mrf).expect("small instance");
    println!(
        "C5 list coloring: {} proper list colorings out of {} configurations",
        exact.num_feasible(),
        exact.num_states()
    );

    let replicas = 40_000;
    let steps = 60;
    let emp = Sampler::for_mrf(Arc::clone(&mrf))
        .algorithm(Algorithm::LubyGlauber)
        .scheduler(Sched::Luby)
        // A proper list coloring to start from: the default start can
        // conflict, and heat-bath marginals are only defined on states
        // with feasible completions (paper assumption).
        .start(vec![1, 2, 0, 3, 2])
        .seed(77)
        .distribution(steps, replicas)
        .expect("valid configuration");
    let tv = emp.tv_against_dense(&exact.distribution());
    println!("LubyGlauber, {steps} rounds x {replicas} replicas:");
    println!("  total variation distance to exact Gibbs = {tv:.4}");

    println!(
        "\nper-solution frequencies (expected {:.4} each):",
        1.0 / exact.num_feasible() as f64
    );
    for (idx, p) in exact.feasible().take(8) {
        println!(
            "  config #{idx}: exact {p:.4}, empirical {:.4}",
            emp.frequency(idx)
        );
    }
    println!("  ... ({} solutions total)", exact.num_feasible());
}
