//! The Ω(diam) lower bound, end to end (paper §5.1).
//!
//! Builds the gadget-lifted even cycle H^G, computes the **exact** law of
//! its hardcore phase vector by block transfer matrices, and contrasts it
//! with what a truncated local sampler produces: the Gibbs law encodes a
//! maximum cut of the cycle (a global signal), the local sampler cannot.
//!
//! Run with: `cargo run --release --example hardcore_phases`

use lsl::lowerbound::exact_phases::ExactPhaseDistribution;
use lsl::lowerbound::experiment::local_protocol_phase_stats;
use lsl::lowerbound::gadget::GadgetParams;
use lsl::lowerbound::lifted::LiftedCycle;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let params = GadgetParams {
        side: 10,
        terminals: 4,
        delta: 4,
    };
    let m = 6;
    let lambda = 10.0; // λ_c(4) = 27/16 ≈ 1.69: deep in non-uniqueness
    let mut rng = StdRng::seed_from_u64(1);
    let lifted = LiftedCycle::build_selected(m, params, lambda, 4, &mut rng);
    println!(
        "lifted cycle: m = {m} gadgets x {} vertices = {} total, Δ-regular with Δ = {}",
        lifted.gadget().num_vertices(),
        lifted.graph().num_vertices(),
        lifted.graph().max_degree()
    );

    let exact = ExactPhaseDistribution::compute(&lifted, lambda);
    let (p_plus, p_minus) = exact.max_cut_probabilities();
    println!("\nexact Gibbs phase law at λ = {lambda}:");
    println!("  total max-cut mass      = {:.4}", exact.max_cut_mass());
    println!("  the two max cuts        = {p_plus:.4} / {p_minus:.4} (equal by symmetry)");
    println!("  any-tie mass            = {:.4}", exact.tie_mass());
    println!(
        "  antipodal conditional gap |P(+|+) - P(+|-)| = {:.4}  <- the global signal",
        exact.conditional_gap().unwrap()
    );

    println!("\ntruncated local samplers (t rounds << diam):");
    for t in [0usize, 1, 2] {
        let stats = local_protocol_phase_stats(&lifted, lambda, t, 2000, 5);
        println!(
            "  t = {t}: max-cut fraction = {:.4}, conditional gap = {}",
            stats.max_cut_fraction(),
            stats
                .conditional_gap()
                .map_or("n/a".to_string(), |g| format!("{g:.4}"))
        );
    }
    println!("\nThe local sampler's antipodal phases stay independent (gap ≈ 0):");
    println!("sampling this distribution requires Ω(diam) rounds (Theorem 1.3).");
}
