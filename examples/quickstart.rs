//! Quickstart: sample a proper coloring of a torus, two ways.
//!
//! 1. The fast "direct" simulation through the sampler facade — one
//!    typed builder over models × algorithms × schedulers × backends.
//! 2. The same algorithm as a LOCAL-model protocol, with round and
//!    message accounting — each chain step is exactly one LOCAL round.
//!
//! Run with: `cargo run --release --example quickstart`

use lsl::core::programs::LocalMetropolisProgram;
use lsl::local::runtime::Simulator;
use lsl::prelude::*;

fn main() {
    let rows = 16;
    let cols = 16;
    let q = 16; // q = 4Δ > (2+√2)·Δ: Theorem 1.2 regime
    let rounds = 120;

    let mrf = Arc::new(models::proper_coloring(generators::torus(rows, cols), q));
    println!(
        "torus {rows}x{cols}: n = {}, Δ = {}, q = {q}",
        mrf.num_vertices(),
        mrf.graph().max_degree()
    );

    // 1. Direct simulation through the facade (the parallel backend is
    //    bit-identical to the sequential one by the determinism contract).
    let mut sampler = Sampler::for_mrf(Arc::clone(&mrf))
        .algorithm(Algorithm::LocalMetropolis)
        .backend(Backend::Parallel { threads: 0 })
        .seed(2026)
        .build()
        .expect("valid configuration");
    sampler.run(rounds);
    println!(
        "direct simulation: {} rounds -> proper coloring? {}",
        rounds,
        mrf.is_feasible(sampler.state())
    );

    // 2. LOCAL-model protocol with accounting.
    let sim = Simulator::new(mrf.graph_arc(), 2026);
    let run = sim.run_with::<LocalMetropolisProgram>(rounds, &mrf);
    println!(
        "LOCAL protocol:    {} rounds -> proper coloring? {}",
        run.stats.rounds,
        mrf.is_feasible(&run.outputs)
    );
    println!(
        "                   {} messages, max message = {} bits (O(log q + 64))",
        run.stats.messages, run.stats.max_message_bits
    );

    // Show a corner of the sampled coloring.
    println!("sampled colors of the first row:");
    let row: Vec<u32> = run.outputs[..cols].to_vec();
    println!("  {row:?}");
}
