//! Why sampling needs Ω(log n) rounds even on a path (Theorem 5.1).
//!
//! Computes — exactly, via transfer matrices — how strongly the color of
//! one path vertex influences another at distance d, and shows the
//! influence decays as (1/2)^d but never vanishes: any t-round LOCAL
//! protocol makes far-apart outputs exactly independent, so it cannot
//! match the Gibbs law until t grows with log n.
//!
//! Run with: `cargo run --release --example path_correlations`

use lsl::graph::VertexId;
use lsl::lowerbound::path_lb::{decay_curve, fit_eta, independence_defect, pair_joint};
use lsl::mrf::models;

fn main() {
    let n = 48;
    let mrf = models::proper_coloring(lsl::graph::generators::path(n), 3);
    println!("uniform 3-colorings of the {n}-vertex path");
    println!("\nexact conditional influence of σ_0 on σ_d (eq. 28):");
    println!("{:>4} {:>14} {:>14}", "d", "influence", "(1/2)^d");
    let curve = decay_curve(&mrf, &[1, 2, 4, 6, 8, 10, 12], 0.05);
    for p in &curve {
        println!(
            "{:>4} {:>14.6e} {:>14.6e}",
            p.distance,
            p.influence,
            0.5f64.powi(p.distance as i32)
        );
    }
    println!(
        "fitted decay rate η = {:.4} (theory: 0.5)",
        fit_eta(&curve).unwrap()
    );

    println!("\nindependence defect of the Gibbs pair (σ_0, σ_d):");
    println!("{:>4} {:>14}", "d", "defect");
    for d in [2u32, 4, 6, 8] {
        let joint = pair_joint(&mrf, VertexId(0), VertexId(d));
        println!("{d:>4} {:>14.6e}", independence_defect(&joint, 3));
    }
    println!("\nA t-round protocol has defect exactly 0 at distance > 2t;");
    println!("the Gibbs defect is positive at every distance -> t = Ω(log n).");
}
