//! Distributed sampling from a weighted (soft-constraint) model: the
//! Ising model on a torus, across temperatures.
//!
//! LocalMetropolis handles soft activities through genuinely biased edge
//! coins (pass probability Ã(σu,σv)·Ã(Xu,σv)·Ã(σu,Xv)); this example
//! sweeps the edge activity β and reports the mean agreement between
//! neighboring spins — low β (antiferromagnetic) forces disagreement,
//! high β (ferromagnetic) forces agreement.
//!
//! Run with: `cargo run --release --example ising_sweep`

use lsl::prelude::*;

fn main() {
    let g = generators::torus(16, 16);
    println!("Ising on a 16x16 torus, LocalMetropolis, 2000 rounds, 8 replicas");
    println!("{:>6} {:>18}", "β", "neighbor agreement");
    for beta in [0.25, 0.5, 1.0, 1.5, 2.5] {
        let mrf = Arc::new(models::ising(g.clone(), beta));
        let mut agreement_sum = 0.0;
        let replicas = 8;
        for rep in 0..replicas {
            let mut sampler = Sampler::for_mrf(Arc::clone(&mrf))
                .algorithm(Algorithm::LocalMetropolis)
                .backend(Backend::Parallel { threads: 0 })
                .seed(100 + rep)
                .build()
                .expect("valid configuration");
            sampler.run(2000);
            let state = sampler.state();
            let agree = mrf
                .graph()
                .edges()
                .filter(|&(_, u, v)| state[u.index()] == state[v.index()])
                .count();
            agreement_sum += agree as f64 / mrf.graph().num_edges() as f64;
        }
        println!("{beta:>6.2} {:>18.4}", agreement_sum / replicas as f64);
    }
    println!("\nβ < 1 suppresses agreement, β > 1 promotes it (paper §2.2 Potts/Ising).");
}
